"""Tests for the micro-batch streaming pipeline (repro.stream)."""

import threading
import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.pipeline import packets_from
from repro.detect import DetectionThresholds, OnlineDetector
from repro.netflow import FlowTable, assemble_flows
from repro.netflow.flow_assembler import FlowAssembler
from repro.netflow.mapping import flow_table_to_property_graph
from repro.netflow.record import NetflowRecord
from repro.serve import QueryServer
from repro.stream import (
    Batch,
    BoundedQueue,
    GraphAccumulator,
    PipelineAborted,
    ReplaySource,
    StreamPipeline,
    TraceSource,
    WindowAssembler,
    resolve_lateness,
    resolve_queue_capacity,
    resolve_window_seconds,
)
from repro.stream.queues import CLOSE
from repro.trace import attacks
from repro.trace.hosts import ipv4
from repro.trace.synthesizer import TraceSynthesizer

WINDOW = 5.0


def make_source(
    *, duration=20.0, rate=40.0, seed=11, attacks_=(), batch_packets=256
):
    return TraceSource(
        synthesizer=TraceSynthesizer(session_rate=rate, seed=seed),
        duration=duration,
        attacks=tuple(attacks_),
        batch_packets=batch_packets,
    )


def batch_reference(source, detector_kwargs=None):
    """The equivalent batch run: global stable sort + OnlineDetector."""
    records = list(assemble_flows(packets_from(iter(source.frames()))))
    records.sort(key=lambda r: r.start_time)
    det = OnlineDetector(**(detector_kwargs or {}))
    return records, list(det.run(records))


def record(start, src=1, dst=2, sport=1000, dport=80):
    return NetflowRecord(
        src_ip=src, dst_ip=dst, src_port=sport, dst_port=dport,
        protocol=6, start_time=start, duration_ms=100.0,
        out_bytes=100, in_bytes=100, out_pkts=1, in_pkts=1,
        syn_count=1, ack_count=1, state=3,
    )


# ----------------------------------------------------------------------
class TestConfig:
    def test_defaults(self, monkeypatch):
        for var in ("REPRO_STREAM_QUEUE", "REPRO_STREAM_WINDOW",
                    "REPRO_STREAM_LATENESS"):
            monkeypatch.delenv(var, raising=False)
        assert resolve_queue_capacity(None) == 8
        assert resolve_window_seconds(None) == 5.0
        assert resolve_lateness(None) is None

    def test_env_overrides(self, monkeypatch):
        monkeypatch.setenv("REPRO_STREAM_QUEUE", "3")
        monkeypatch.setenv("REPRO_STREAM_WINDOW", "2.5")
        monkeypatch.setenv("REPRO_STREAM_LATENESS", "1.5")
        assert resolve_queue_capacity(None) == 3
        assert resolve_window_seconds(None) == 2.5
        assert resolve_lateness(None) == 1.5

    def test_flag_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_STREAM_QUEUE", "3")
        monkeypatch.setenv("REPRO_STREAM_WINDOW", "2.5")
        monkeypatch.setenv("REPRO_STREAM_LATENESS", "1.5")
        assert resolve_queue_capacity(16) == 16
        assert resolve_window_seconds("10") == 10.0
        assert resolve_lateness("auto") is None
        assert resolve_lateness(0) == 0.0

    def test_invalid_values(self, monkeypatch):
        with pytest.raises(ValueError):
            resolve_queue_capacity(0)
        with pytest.raises(ValueError):
            resolve_window_seconds(-1)
        with pytest.raises(ValueError):
            resolve_lateness(-0.5)
        monkeypatch.setenv("REPRO_STREAM_QUEUE", "zero")
        with pytest.raises(ValueError):
            resolve_queue_capacity(None)


# ----------------------------------------------------------------------
class TestBoundedQueue:
    def test_fifo_and_high_water(self):
        q = BoundedQueue(4, name="t")
        abort = threading.Event()
        for i in range(3):
            q.put(i, abort)
        assert q.depth_high_water == 3
        assert [q.get(abort) for _ in range(3)] == [0, 1, 2]
        assert q.puts == 3

    def test_blocking_put_stalls_until_get(self):
        q = BoundedQueue(1, name="t")
        abort = threading.Event()
        q.put("a", abort)
        got = []

        def consume():
            time.sleep(0.15)
            got.append(q.get(abort))
            got.append(q.get(abort))

        t = threading.Thread(target=consume)
        t.start()
        q.put("b", abort)  # must block until the consumer drains "a"
        t.join()
        assert got == ["a", "b"]
        assert q.stall_count >= 1
        assert q.stall_seconds > 0
        assert q.depth_high_water <= 1

    def test_abort_unblocks_put(self):
        q = BoundedQueue(1, name="t")
        abort = threading.Event()
        q.put("a", abort)
        timer = threading.Timer(0.1, abort.set)
        timer.start()
        with pytest.raises(PipelineAborted):
            q.put("b", abort)
        timer.join()

    def test_abort_unblocks_get(self):
        q = BoundedQueue(1, name="t")
        abort = threading.Event()
        timer = threading.Timer(0.1, abort.set)
        timer.start()
        with pytest.raises(PipelineAborted):
            q.get(abort)
        timer.join()


# ----------------------------------------------------------------------
class TestWindowAssembler:
    def test_record_mode_windows_partition_by_start_time(self):
        wa = WindowAssembler(window_seconds=10.0)
        recs = [record(t) for t in (1.0, 2.0, 11.0, 12.0, 25.0)]
        windows = wa.process_records(recs)
        windows += wa.drain()
        assert [w.index for w in windows] == [0, 1, 2]
        assert [len(w) for w in windows] == [2, 2, 1]
        for w in windows:
            for r in w.records:
                assert w.start <= r.start_time < w.end

    def test_windows_sorted_by_start_time(self):
        wa = WindowAssembler(window_seconds=10.0)
        wa.process_records([record(3.0), record(1.0), record(2.0)])
        (w,) = wa.drain()
        assert [r.start_time for r in w.records] == [1.0, 2.0, 3.0]

    def test_watermark_holds_window_until_lateness_passes(self):
        wa = WindowAssembler(window_seconds=10.0, lateness=5.0)
        # Clock 12 < end(0) + lateness: window 0 must stay open.
        assert wa.process_records([record(1.0), record(12.0)]) == []
        # Clock 15.1 pushes the watermark past end(0)=10.
        windows = wa.process_records([record(15.1)])
        assert [w.index for w in windows] == [0]

    def test_late_record_rerouted_and_counted(self):
        wa = WindowAssembler(window_seconds=10.0, lateness=0.0)
        wa.process_records([record(5.0)])
        windows = wa.process_records([record(25.0)])  # closes window 0
        # Empty windows are never materialised: only window 0 comes out.
        assert [w.index for w in windows] == [0]
        assert [len(w) for w in windows] == [1]
        late = record(3.0)  # belongs to the already-emitted window 0
        rerouted = wa.process_records([late])
        assert wa.late_flows == 1
        # The late record rides in the next unemitted window instead of
        # being dropped (here window 1, which the watermark has already
        # passed, so it comes straight out).
        assert any(late in w.records for w in rerouted + wa.drain())

    def test_drain_flushes_open_flows_and_partial_window(self):
        frames = TraceSource(
            synthesizer=TraceSynthesizer(session_rate=30.0, seed=5),
            duration=8.0,
        ).frames()
        packets = list(packets_from(iter(frames)))
        wa = WindowAssembler(window_seconds=WINDOW)
        windows = wa.process_packets(packets)
        windows += wa.drain()
        n_streamed = sum(len(w) for w in windows)
        n_batch = len(list(assemble_flows(packets_from(iter(frames)))))
        assert n_streamed == n_batch
        assert wa.flows_out == n_batch

    def test_auto_lateness_produces_no_late_flows(self):
        frames = TraceSource(
            synthesizer=TraceSynthesizer(session_rate=40.0, seed=6),
            duration=15.0,
        ).frames()
        wa = WindowAssembler(window_seconds=2.5)
        for i in range(0, len(frames), 100):
            wa.process_packets(
                list(packets_from(iter(frames[i : i + 100])))
            )
        wa.drain()
        assert wa.late_flows == 0

    def test_rejects_nonpositive_window(self):
        with pytest.raises(ValueError):
            WindowAssembler(window_seconds=0)


# ----------------------------------------------------------------------
class TestGraphAccumulator:
    def test_incremental_graph_equals_batch_mapping(self):
        frames = TraceSource(
            synthesizer=TraceSynthesizer(session_rate=40.0, seed=8),
            duration=12.0,
        ).frames()
        wa = WindowAssembler(window_seconds=WINDOW)
        acc = GraphAccumulator()
        windows = wa.process_packets(list(packets_from(iter(frames))))
        windows += wa.drain()
        for w in windows:
            acc.fold(w)
        live = acc.graph()

        all_records = [r for w in windows for r in w.records]
        batch = flow_table_to_property_graph(
            FlowTable.from_records(all_records)
        )
        assert live.n_vertices == batch.n_vertices
        assert live.n_edges == batch.n_edges
        np.testing.assert_array_equal(live.src, batch.src)
        np.testing.assert_array_equal(live.dst, batch.dst)
        np.testing.assert_array_equal(
            live.vertex_properties["ID"], batch.vertex_properties["ID"]
        )
        assert set(live.edge_properties) == set(batch.edge_properties)
        for name, col in batch.edge_properties.items():
            np.testing.assert_array_equal(
                live.edge_properties[name], np.asarray(col)
            )

    def test_published_graph_is_immutable_under_growth(self):
        acc = GraphAccumulator()
        wa = WindowAssembler(window_seconds=10.0)
        wa.process_records([record(1.0, src=1, dst=2)])
        (w1,) = wa.drain()
        g1 = acc.fold(w1)
        src_before = g1.src.copy()
        wa2 = WindowAssembler(window_seconds=10.0)
        wa2.process_records(
            [record(11.0, src=3, dst=4), record(12.0, src=5, dst=6)]
        )
        for w in wa2.drain():
            acc.fold(w)
        np.testing.assert_array_equal(g1.src, src_before)
        assert acc.n_vertices == 6


# ----------------------------------------------------------------------
class TestPipeline:
    def test_end_to_end_matches_batch(self):
        gt = attacks.syn_flood(
            attacker_ip=ipv4(203, 0, 113, 5), victim_ip=ipv4(10, 2, 0, 3),
            start_time=1_000_006.0, duration=5.0,
        )
        source = make_source(duration=18.0, attacks_=[gt])
        records, batch = batch_reference(source)
        result = StreamPipeline(
            source, detector=OnlineDetector(), window_seconds=WINDOW
        ).run()
        assert list(result.detections) == batch
        assert result.stats.flows == len(records)
        assert result.stats.late_flows == 0
        assert result.graph is not None
        assert result.graph.n_edges == len(records)

    @pytest.mark.parametrize("window_seconds", [2.5, 5.0])
    @pytest.mark.parametrize("queue_capacity", [1, 4])
    def test_byte_identity_across_knobs(self, window_seconds, queue_capacity):
        gt = attacks.udp_flood(
            attacker_ip=ipv4(203, 0, 113, 8), victim_ip=ipv4(10, 2, 0, 5),
            start_time=1_000_007.0,
        )
        source = make_source(duration=15.0, seed=23, attacks_=[gt])
        _, batch = batch_reference(source)
        result = StreamPipeline(
            source,
            detector=OnlineDetector(),
            window_seconds=window_seconds,
            queue_capacity=queue_capacity,
        ).run()
        assert list(result.detections) == batch
        assert result.stats.late_flows == 0

    @settings(max_examples=5, deadline=None)
    @given(
        schedule=st.lists(
            st.tuples(
                st.sampled_from(
                    ["syn_flood", "host_scan", "udp_flood", "icmp_flood"]
                ),
                st.floats(min_value=1.0, max_value=10.0),
                st.floats(min_value=1.0, max_value=4.0),
            ),
            min_size=0,
            max_size=3,
        ),
        window_seconds=st.sampled_from([2.0, 5.0]),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_byte_identity_random_attack_schedules(
        self, schedule, window_seconds, seed
    ):
        builders = {
            "syn_flood": lambda t, d, i: attacks.syn_flood(
                attacker_ip=ipv4(203, 0, 113, 10 + i),
                victim_ip=ipv4(10, 2, 0, 2 + i),
                start_time=t, duration=d, n_packets=400, seed=seed + i,
            ),
            "host_scan": lambda t, d, i: attacks.host_scan(
                attacker_ip=ipv4(203, 0, 113, 10 + i),
                victim_ip=ipv4(10, 2, 0, 2 + i),
                start_time=t, duration=d, n_ports=120, seed=seed + i,
            ),
            "udp_flood": lambda t, d, i: attacks.udp_flood(
                attacker_ip=ipv4(203, 0, 113, 10 + i),
                victim_ip=ipv4(10, 2, 0, 2 + i),
                start_time=t, duration=d, n_packets=500, seed=seed + i,
            ),
            "icmp_flood": lambda t, d, i: attacks.icmp_flood(
                attacker_ip=ipv4(203, 0, 113, 10 + i),
                victim_ip=ipv4(10, 2, 0, 2 + i),
                start_time=t, duration=d, n_packets=500, seed=seed + i,
            ),
        }
        gts = [
            builders[kind](1_000_000.0 + offset, duration, i)
            for i, (kind, offset, duration) in enumerate(schedule)
        ]
        source = make_source(
            duration=12.0, rate=25.0, seed=seed, attacks_=gts,
            batch_packets=128,
        )
        _, batch = batch_reference(
            source, detector_kwargs={"cooldown_seconds": 5.0}
        )
        result = StreamPipeline(
            source,
            detector=OnlineDetector(cooldown_seconds=5.0),
            window_seconds=window_seconds,
            queue_capacity=2,
        ).run()
        assert list(result.detections) == batch
        assert result.stats.late_flows == 0

    def test_backpressure_bounds_queue_depth(self):
        source = make_source(duration=15.0, batch_packets=64)
        result = StreamPipeline(
            source,
            detector=OnlineDetector(),
            window_seconds=2.5,
            queue_capacity=2,
            sink_delay_seconds=0.02,
        ).run()
        stats = result.stats
        for q in stats.queues:
            assert q.depth_high_water <= q.capacity
        assert any(q.backpressure_stalls > 0 for q in stats.queues)
        assert sum(q.stall_seconds for q in stats.queues) > 0

    def test_stop_requests_early_clean_drain(self):
        source = make_source(duration=30.0, batch_packets=32)
        pipeline = StreamPipeline(
            source, detector=OnlineDetector(), window_seconds=WINDOW,
            queue_capacity=1, sink_delay_seconds=0.01,
        )
        timer = threading.Timer(0.2, pipeline.stop)
        timer.start()
        result = pipeline.run()
        timer.join()
        assert pipeline.stopped
        # Fewer packets than the full trace, but the drain still ran:
        # every assembled flow reached the sink.
        full_packets = len(list(packets_from(iter(source.frames()))))
        assert result.stats.packets < full_packets
        assert result.stats.flows == result.stats.stage("sink").events_in

    def test_query_server_swapped_per_window(self):
        source = make_source(duration=12.0)
        server = QueryServer(GraphAccumulator().graph(), threads=1)
        epoch0 = server.epoch
        result = StreamPipeline(
            source, detector=OnlineDetector(), window_seconds=2.5,
            server=server,
        ).run()
        assert result.windows > 0
        assert server.epoch == epoch0 + result.windows
        assert server.snapshot.graph.n_edges == result.graph.n_edges

    def test_stage_error_propagates(self):
        class BrokenSource:
            attacks = ()

            def batches(self):
                yield Batch(kind="packets", items=())
                raise RuntimeError("boom")

        with pytest.raises(RuntimeError, match="source.*boom"):
            StreamPipeline(BrokenSource(), window_seconds=WINDOW).run()

    def test_pipeline_runs_once(self):
        source = make_source(duration=2.0)
        pipeline = StreamPipeline(source, window_seconds=WINDOW)
        pipeline.run()
        with pytest.raises(RuntimeError, match="runs once"):
            pipeline.run()

    def test_ground_truth_latencies_reported(self, tmp_path):
        background = TraceSynthesizer(session_rate=40.0, seed=17)
        gt = attacks.syn_flood(
            attacker_ip=ipv4(203, 0, 113, 5), victim_ip=ipv4(10, 2, 0, 2),
            start_time=1_000_008.0, duration=4.0,
        )
        clean = TraceSynthesizer(session_rate=40.0, seed=17).generate(
            20.0, start_time=1_000_000.0
        )
        table = FlowTable.from_records(
            sorted(
                assemble_flows(packets_from(clean)),
                key=lambda r: r.start_time,
            )
        )
        thresholds = DetectionThresholds.fit_normal(
            {k: table[k] for k in FlowTable.COLUMN_NAMES},
            window_seconds=WINDOW,
        )
        source = TraceSource(
            synthesizer=background, duration=20.0, attacks=(gt,)
        )
        result = StreamPipeline(
            source,
            detector=OnlineDetector(thresholds, window_seconds=WINDOW),
            window_seconds=WINDOW,
        ).run()
        (lat,) = result.latencies
        assert lat.kind == "syn_flood"
        assert lat.detected
        assert lat.seconds_to_detection is not None
        assert 0 <= lat.seconds_to_detection < gt.end_time - gt.start_time + WINDOW


# ----------------------------------------------------------------------
class TestReplaySource:
    def test_npz_replay_matches_live_flows(self, tmp_path):
        source = make_source(duration=10.0, seed=31)
        records = list(
            assemble_flows(packets_from(iter(source.frames())))
        )
        table = FlowTable.from_records(records)
        path = tmp_path / "flows.npz"
        table.save_npz(path)

        replay = ReplaySource(path, batch_packets=64)
        result = StreamPipeline(
            replay, detector=OnlineDetector(), window_seconds=WINDOW
        ).run()
        assert result.stats.flows == len(records)

        det = OnlineDetector()
        batch = list(
            det.run(sorted(records, key=lambda r: r.start_time))
        )
        assert list(result.detections) == batch

    def test_rejects_unknown_suffix(self, tmp_path):
        bogus = tmp_path / "trace.txt"
        bogus.write_text("nope")
        with pytest.raises(ValueError, match="unsupported replay"):
            ReplaySource(bogus)


# ----------------------------------------------------------------------
class TestQueueSentinel:
    def test_close_drains_in_order(self):
        q = BoundedQueue(4, name="t")
        abort = threading.Event()
        q.put(1, abort)
        q.close(abort)
        assert q.get(abort) == 1
        assert q.get(abort) is CLOSE
