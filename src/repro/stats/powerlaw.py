"""Power-law fitting and sampling.

The BA family of generators produces degree sequences whose tail follows
``p(k) ~ k^-alpha``.  The seed-analysis step (Fig. 1 of the paper) fits the
power-law exponent of the seed's degree distribution so the generation phase
can verify the synthetic graph preserves it.  The fit uses the discrete
maximum-likelihood estimator of Clauset, Shalizi & Newman (2009) with an
``x_min`` sweep minimising the Kolmogorov–Smirnov distance.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import special

__all__ = ["PowerLawFit", "fit_power_law", "sample_power_law"]


@dataclass(frozen=True)
class PowerLawFit:
    """Result of a discrete power-law MLE fit.

    Attributes
    ----------
    alpha:
        Fitted exponent (the paper requires ``alpha > 1``).
    x_min:
        Lower cutoff above which the power law holds.
    ks_distance:
        KS statistic between the empirical tail and the fitted model.
    n_tail:
        Number of observations at or above ``x_min``.
    """

    alpha: float
    x_min: int
    ks_distance: float
    n_tail: int

    def pmf(self, k) -> np.ndarray:
        """Model probability mass at integer ``k >= x_min``."""
        k = np.atleast_1d(np.asarray(k, dtype=np.float64))
        z = special.zeta(self.alpha, self.x_min)
        out = np.where(k >= self.x_min, k ** (-self.alpha) / z, 0.0)
        return out


def _mle_alpha_discrete(tail: np.ndarray, x_min: int) -> float:
    """Approximate discrete MLE: alpha = 1 + n / sum ln(x / (x_min - 1/2))."""
    shifted = tail / (x_min - 0.5)
    denom = np.sum(np.log(shifted))
    if denom <= 0:
        return np.inf
    return 1.0 + tail.size / denom


def _ks_discrete(tail: np.ndarray, alpha: float, x_min: int) -> float:
    values = np.unique(tail)
    emp_cdf = np.searchsorted(np.sort(tail), values, side="right") / tail.size
    z = special.zeta(alpha, x_min)
    # Model CDF at v: 1 - zeta(alpha, v+1)/zeta(alpha, x_min)
    model_cdf = 1.0 - special.zeta(alpha, values + 1.0) / z
    return float(np.abs(emp_cdf - model_cdf).max())


def fit_power_law(
    samples: np.ndarray,
    *,
    x_min: int | None = None,
    max_xmin_candidates: int = 50,
) -> PowerLawFit:
    """Fit a discrete power law to positive integer-valued samples.

    If ``x_min`` is given, only the exponent is estimated.  Otherwise every
    distinct value (up to ``max_xmin_candidates``, spread across the range)
    is tried as a cutoff and the one with minimal KS distance wins.
    """
    samples = np.asarray(samples, dtype=np.float64)
    samples = samples[samples >= 1]
    if samples.size < 2:
        raise ValueError("need at least two samples >= 1 to fit a power law")

    if x_min is not None:
        tail = samples[samples >= x_min]
        if tail.size < 2:
            raise ValueError(f"fewer than two samples above x_min={x_min}")
        alpha = _mle_alpha_discrete(tail, x_min)
        ks = _ks_discrete(tail, alpha, x_min)
        return PowerLawFit(alpha=alpha, x_min=int(x_min), ks_distance=ks,
                           n_tail=int(tail.size))

    candidates = np.unique(samples.astype(np.int64))
    # Exclude cutoffs that would leave a trivially small tail.
    candidates = candidates[candidates <= np.quantile(samples, 0.9)]
    if candidates.size == 0:
        candidates = np.asarray([int(samples.min())])
    if candidates.size > max_xmin_candidates:
        idx = np.linspace(0, candidates.size - 1, max_xmin_candidates)
        candidates = candidates[idx.astype(np.int64)]

    best: PowerLawFit | None = None
    for xm in candidates:
        tail = samples[samples >= xm]
        if tail.size < 10:
            continue
        alpha = _mle_alpha_discrete(tail, int(xm))
        if not np.isfinite(alpha) or alpha <= 1.0:
            continue
        ks = _ks_discrete(tail, alpha, int(xm))
        if best is None or ks < best.ks_distance:
            best = PowerLawFit(alpha=alpha, x_min=int(xm), ks_distance=ks,
                               n_tail=int(tail.size))
    if best is None:
        # Fall back to the smallest cutoff without the tail-size guard.
        xm = int(candidates[0])
        tail = samples[samples >= xm]
        alpha = max(_mle_alpha_discrete(tail, xm), 1.0 + 1e-6)
        ks = _ks_discrete(tail, alpha, xm)
        best = PowerLawFit(alpha=alpha, x_min=xm, ks_distance=ks,
                           n_tail=int(tail.size))
    return best


def sample_power_law(
    alpha: float,
    size: int,
    rng: np.random.Generator,
    *,
    x_min: int = 1,
    x_max: int | None = None,
) -> np.ndarray:
    """Draw integer variates from a (truncated) discrete power law.

    Uses the continuous inverse-CDF approximation rounded to integers, which
    is accurate for ``alpha > 1`` and is how large-scale generators sample
    degree targets without materialising the full pmf.
    """
    if alpha <= 1.0:
        raise ValueError("power-law exponent must exceed 1")
    if x_min < 1:
        raise ValueError("x_min must be >= 1")
    if size < 0:
        raise ValueError("size must be non-negative")
    u = rng.random(size)
    lo = (x_min - 0.5) ** (1.0 - alpha)
    if x_max is None:
        hi = 0.0
    else:
        hi = (x_max + 0.5) ** (1.0 - alpha)
    x = (lo + u * (hi - lo)) ** (1.0 / (1.0 - alpha))
    out = np.maximum(np.round(x).astype(np.int64), x_min)
    if x_max is not None:
        out = np.minimum(out, x_max)
    return out
