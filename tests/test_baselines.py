"""Tests for the baseline generators (§II survey models)."""

import numpy as np
import pytest

from repro.baselines import (
    BTER,
    ChungLu,
    ErdosRenyi,
    RMat,
    StochasticBlockModel,
    WattsStrogatz,
)
from repro.core import degree_veracity
from repro.netflow.attributes import NETFLOW_EDGE_ATTRIBUTES

ALL_MODELS = [
    ErdosRenyi,
    WattsStrogatz,
    ChungLu,
    RMat,
    StochasticBlockModel,
    BTER,
]


@pytest.mark.parametrize("model_cls", ALL_MODELS)
class TestCommonContract:
    def test_generates_requested_edges(self, model_cls, seed_analysis):
        g = model_cls(seed=1).generate(seed_analysis, 5000)
        assert g.n_edges == 5000

    def test_endpoints_valid(self, model_cls, seed_analysis):
        g = model_cls(seed=2).generate(seed_analysis, 2000)
        assert g.src.min() >= 0 and g.src.max() < g.n_vertices
        assert g.dst.min() >= 0 and g.dst.max() < g.n_vertices

    def test_properties_attached(self, model_cls, seed_analysis):
        g = model_cls(seed=3).generate(seed_analysis, 1000)
        for name in NETFLOW_EDGE_ATTRIBUTES:
            assert name in g.edge_properties
            assert len(g.edge_properties[name]) == 1000

    def test_no_properties_option(self, model_cls, seed_analysis):
        g = model_cls(seed=4).generate(
            seed_analysis, 1000, with_properties=False
        )
        assert g.edge_properties == {}

    def test_deterministic(self, model_cls, seed_analysis):
        a = model_cls(seed=5).generate(seed_analysis, 1500)
        b = model_cls(seed=5).generate(seed_analysis, 1500)
        assert np.array_equal(a.src, b.src)
        assert np.array_equal(a.dst, b.dst)

    def test_seed_changes_output(self, model_cls, seed_analysis):
        a = model_cls(seed=6).generate(seed_analysis, 1500)
        b = model_cls(seed=7).generate(seed_analysis, 1500)
        assert not (
            np.array_equal(a.src, b.src) and np.array_equal(a.dst, b.dst)
        )

    def test_bad_sizes_rejected(self, model_cls, seed_analysis):
        with pytest.raises(ValueError):
            model_cls().generate(seed_analysis, 0)
        with pytest.raises(ValueError):
            model_cls().generate(seed_analysis, 10, n_vertices=1)


class TestModelSpecifics:
    def test_er_degrees_concentrated(self, seed_analysis):
        """ER's binomial tail: max degree stays within a few times the
        mean — no hubs (the §II motivation)."""
        g = ErdosRenyi(seed=1).generate(
            seed_analysis, 20_000, n_vertices=2000, with_properties=False
        )
        deg = g.degrees()
        assert deg.max() < 4 * deg.mean()

    def test_chung_lu_matches_seed_tail(self, seed_graph, seed_analysis):
        """CL reproduces the seed's heavy tail far better than ER."""
        cl = ChungLu(seed=1).generate(
            seed_analysis, 20_000, with_properties=False
        )
        er = ErdosRenyi(seed=1).generate(
            seed_analysis, 20_000, n_vertices=cl.n_vertices,
            with_properties=False,
        )
        deg_ratio_cl = cl.degrees().max() / cl.degrees().mean()
        deg_ratio_er = er.degrees().max() / er.degrees().mean()
        seed_ratio = seed_graph.degrees().max() / seed_graph.degrees().mean()
        assert abs(np.log(deg_ratio_cl / seed_ratio)) < abs(
            np.log(deg_ratio_er / seed_ratio)
        )

    def test_ws_beta_zero_is_lattice(self, seed_analysis):
        g = WattsStrogatz(beta=0.0, seed=1).generate(
            seed_analysis, 1000, n_vertices=500, with_properties=False
        )
        # Pure lattice: every out-neighbour is within k hops clockwise.
        k = int(np.ceil(1000 / 500))
        gaps = (g.dst - g.src) % 500
        assert gaps.max() <= k

    def test_ws_beta_validation(self):
        with pytest.raises(ValueError):
            WattsStrogatz(beta=1.5)

    def test_rmat_vertices_power_of_two(self, seed_analysis):
        g = RMat(seed=1).generate(
            seed_analysis, 4000, n_vertices=700, with_properties=False
        )
        assert g.n_vertices == 1024

    def test_rmat_skew_creates_hubs(self, seed_analysis):
        g = RMat(seed=1).generate(
            seed_analysis, 30_000, n_vertices=2048, with_properties=False
        )
        deg = g.degrees()
        assert deg.max() > 10 * deg[deg > 0].mean()

    def test_rmat_validation(self):
        with pytest.raises(ValueError):
            RMat(a=0.0, b=0.0, c=0.0, d=0.0)

    def test_sbm_block_structure(self, seed_analysis):
        sbm = StochasticBlockModel(
            block_fractions=(0.5, 0.5),
            affinity=np.array([[1.0, 0.0], [0.0, 1.0]]),
            seed=1,
        )
        g = sbm.generate(
            seed_analysis, 5000, n_vertices=1000, with_properties=False
        )
        half = g.n_vertices // 2
        same_side = ((g.src < half) & (g.dst < half)) | (
            (g.src >= half) & (g.dst >= half)
        )
        assert same_side.all()

    def test_sbm_validation(self):
        with pytest.raises(ValueError):
            StochasticBlockModel(block_fractions=())
        with pytest.raises(ValueError):
            StochasticBlockModel(
                block_fractions=(0.5, 0.5),
                affinity=np.ones((3, 3)),
            )

    def test_bter_intra_weight_bounds(self):
        with pytest.raises(ValueError):
            BTER(intra_weight=2.0)

    def test_bter_produces_clustering(self, seed_analysis):
        """BTER's intra-block ER phase yields far more triangles than
        Chung-Lu at the same degree sequence."""
        from repro.graph import global_clustering_coefficient

        bter = BTER(seed=1, intra_weight=0.7).generate(
            seed_analysis, 10_000, n_vertices=800, with_properties=False
        )
        cl = ChungLu(seed=1).generate(
            seed_analysis, 10_000, n_vertices=800, with_properties=False
        )
        assert global_clustering_coefficient(
            bter
        ) > global_clustering_coefficient(cl)


class TestVeracityOrdering:
    def test_scale_free_models_beat_uniform_models(
        self, seed_graph, seed_analysis
    ):
        """The punchline the paper's model choice rests on: degree-aware
        generators (CL) track the seed's degree distribution better than
        degree-blind ones (ER, WS) at the same size."""
        size = 10 * seed_graph.n_edges
        scores = {}
        for model_cls in (ErdosRenyi, WattsStrogatz, ChungLu):
            g = model_cls(seed=3).generate(
                seed_analysis, size, with_properties=False
            )
            scores[model_cls.name] = degree_veracity(seed_graph, g)
        assert scores["CL"] < scores["ER"]
        assert scores["CL"] < scores["WS"]
