"""Histogram utilities used by the veracity metrics.

The paper compares seed and synthetic graphs through their *normalized*
degree and PageRank distributions, then scores similarity as the average
Euclidean distance between the aligned distributions (Section V-A).  The
helpers here implement that alignment: two distributions over different
supports are projected onto the union support (or onto common logarithmic
bins) before the distance is taken.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "normalized_distribution",
    "log_binned_histogram",
    "aligned_euclidean_distance",
    "kolmogorov_smirnov_distance",
]


def normalized_distribution(values: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Return ``(support, frequency)`` with frequencies normalised to sum 1.

    ``values`` is a raw observation vector (e.g. the degree of every vertex).
    The paper additionally divides each *value* by the total across vertices
    when plotting; that is a display transform, while the veracity score acts
    on the probability vector returned here.
    """
    values = np.asarray(values)
    if values.size == 0:
        raise ValueError("cannot normalise an empty observation vector")
    support, counts = np.unique(values, return_counts=True)
    freq = counts.astype(np.float64) / values.size
    return support, freq


def log_binned_histogram(
    values: np.ndarray, n_bins: int = 40, vmin: float | None = None,
    vmax: float | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Histogram positive values into logarithmically spaced bins.

    Returns ``(bin_centers, density)`` where density sums to 1.  Degree and
    PageRank distributions are heavy-tailed, so linear bins would put nearly
    all mass into the first bin; log bins give each decade equal resolution.
    """
    values = np.asarray(values, dtype=np.float64)
    values = values[values > 0]
    if values.size == 0:
        raise ValueError("log binning requires at least one positive value")
    lo = vmin if vmin is not None else values.min()
    hi = vmax if vmax is not None else values.max()
    if lo <= 0:
        raise ValueError("log binning requires a positive lower bound")
    if hi <= lo:
        hi = lo * (1.0 + 1e-9)
    edges = np.logspace(np.log10(lo), np.log10(hi), n_bins + 1)
    counts, _ = np.histogram(values, bins=edges)
    density = counts.astype(np.float64)
    total = density.sum()
    if total > 0:
        density /= total
    centers = np.sqrt(edges[:-1] * edges[1:])
    return centers, density


def aligned_euclidean_distance(
    a_values: np.ndarray, b_values: np.ndarray, *, n_bins: int | None = None
) -> float:
    """Average Euclidean distance between two normalised distributions.

    This is the paper's *veracity score*: smaller means the synthetic data
    is closer to the seed.  When ``n_bins`` is None the distributions are
    aligned on the union of their supports (exact, good for integer degrees);
    otherwise both are projected onto shared log bins (needed for PageRank,
    whose supports are continuous and disjoint).

    The "average" divides the Euclidean norm by the number of aligned support
    points, which is what makes larger synthetic graphs (whose mass spreads
    over many more distinct values) score *lower* — the linear-in-log-size
    decay seen in Figs. 6 and 7.
    """
    a_values = np.asarray(a_values, dtype=np.float64)
    b_values = np.asarray(b_values, dtype=np.float64)
    if n_bins is None:
        sup_a, freq_a = normalized_distribution(a_values)
        sup_b, freq_b = normalized_distribution(b_values)
        union = np.union1d(sup_a, sup_b)
        pa = np.zeros(union.size)
        pb = np.zeros(union.size)
        pa[np.searchsorted(union, sup_a)] = freq_a
        pb[np.searchsorted(union, sup_b)] = freq_b
    else:
        pos_a = a_values[a_values > 0]
        pos_b = b_values[b_values > 0]
        if pos_a.size == 0 or pos_b.size == 0:
            raise ValueError("binned alignment requires positive values")
        lo = min(pos_a.min(), pos_b.min())
        hi = max(pos_a.max(), pos_b.max())
        _, pa = log_binned_histogram(pos_a, n_bins=n_bins, vmin=lo, vmax=hi)
        _, pb = log_binned_histogram(pos_b, n_bins=n_bins, vmin=lo, vmax=hi)
    n = pa.size
    if n == 0:
        return 0.0
    return float(np.linalg.norm(pa - pb) / n)


def kolmogorov_smirnov_distance(
    a_values: np.ndarray, b_values: np.ndarray
) -> float:
    """Two-sample KS statistic, used as a secondary veracity diagnostic."""
    a = np.sort(np.asarray(a_values, dtype=np.float64))
    b = np.sort(np.asarray(b_values, dtype=np.float64))
    if a.size == 0 or b.size == 0:
        raise ValueError("KS distance requires non-empty samples")
    grid = np.union1d(a, b)
    cdf_a = np.searchsorted(a, grid, side="right") / a.size
    cdf_b = np.searchsorted(b, grid, side="right") / b.size
    return float(np.abs(cdf_a - cdf_b).max())
