"""Pluggable local execution backends for the Map-Reduce engine.

The engine keeps two clocks.  The *simulated* clock (Fig. 8-12) is driven
by per-partition CPU costs measured *inside* each task with
``time.perf_counter`` and fed to the :class:`~repro.engine.scheduler.
ClusterScheduler` makespan model — it is independent of how the partition
tasks are actually executed.  The *wall* clock is whatever the hardware
delivers, and that is what this module accelerates: an
:class:`Executor` runs a batch of independent partition tasks and returns
their results in task order, so any backend can stand behind
``ArrayRDD.map_partitions`` without changing observable behaviour.

Three backends are provided:

``serial``
    The original driver-loop behaviour; the default, and the reference
    for determinism.
``threads``
    ``concurrent.futures.ThreadPoolExecutor``.  The hot kernels are NumPy
    calls (``np.unique``, ``np.repeat``, ``np.concatenate``, RNG fills)
    which release the GIL, so threads give real parallelism without any
    serialisation cost.
``processes``
    Fork-per-task worker processes.  Tasks are *inherited* by the forked
    workers (copy-on-write), never pickled; result arrays travel back
    through ``multiprocessing.shared_memory`` segments so a
    multi-hundred-MB partition costs one memcpy instead of a pickle
    round-trip.  Requires the ``fork`` start method (Linux/macOS).
    One process per task (rather than a shared pool) is what makes a
    crashed worker survivable: the driver detects the death through the
    process sentinel and fails only that task.

Every RNG stream in the engine is keyed by ``(seed, partition_index)``
and results are gathered in partition order, so all three backends
produce bit-identical datasets for identical seeds (tested).

Fault tolerance lives in two layers here:

* :meth:`Executor.run_outcomes` runs a batch and reports one
  :class:`TaskOutcome` per task instead of raising, so a single failed
  partition no longer aborts its siblings.  Subclasses override *either*
  :meth:`Executor.run` (simple backends — the base ``run_outcomes``
  guards each task and dispatches through ``run``) *or*
  ``run_outcomes`` natively (the process backend, which must observe
  worker death, and the thread backend's speculative path).
* :func:`run_with_recovery` drives rounds of ``run_outcomes`` with
  per-task retry budgets and exponential backoff — the engine analogue
  of Spark's lineage recomputation.  Because every engine task closure
  captures its *materialised* anchor partitions (source arrays or
  ``persist()``-ed blocks, see ``plan._make_fused_task``), re-running a
  failed task IS recomputing the lost partition's fused chain from its
  narrowest persisted or source ancestor; nothing else is touched.
  Stragglers get speculative re-execution (:class:`SpeculationPolicy`)
  with first-result-wins.

Selection: ``ClusterContext(executor="threads", local_workers=8)``, or
the environment variables ``REPRO_EXECUTOR`` / ``REPRO_LOCAL_WORKERS``
when the constructor arguments are left unset.  Executors are context
managers (``with make_executor(...) as ex:``) and ``close()`` is
idempotent; the process backend additionally reaps any leaked worker
children at interpreter exit.
"""

from __future__ import annotations

import atexit
import math
import multiprocessing as mp
import os
import pickle
import statistics
import time
import traceback
import weakref
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ThreadPoolExecutor
from concurrent.futures import wait as futures_wait
from dataclasses import dataclass
from multiprocessing import connection as mp_connection
from multiprocessing import shared_memory
from typing import Any, Callable, Sequence

import numpy as np

from .faults import FaultPlan

__all__ = [
    "Executor",
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "TaskOutcome",
    "SpeculationPolicy",
    "RecoveryStats",
    "WorkerDied",
    "RemoteTaskError",
    "run_with_recovery",
    "make_executor",
    "available_backends",
    "resolve_backend",
    "default_workers",
    "EXECUTOR_ENV_VAR",
    "WORKERS_ENV_VAR",
]

EXECUTOR_ENV_VAR = "REPRO_EXECUTOR"
WORKERS_ENV_VAR = "REPRO_LOCAL_WORKERS"

Task = Callable[[], Any]


def default_workers() -> int:
    """Worker count when none is configured: one per visible CPU."""
    return max(1, os.cpu_count() or 1)


class WorkerDied(RuntimeError):
    """A worker process exited without reporting a result."""


class RemoteTaskError(RuntimeError):
    """Stand-in for a worker exception that could not be pickled back;
    carries the original type name and formatted traceback as text."""


@dataclass
class TaskOutcome:
    """Per-task result-or-error record returned by ``run_outcomes``."""

    value: Any = None
    error: BaseException | None = None

    @property
    def ok(self) -> bool:
        return self.error is None

    def unwrap(self) -> Any:
        if self.error is not None:
            raise self.error
        return self.value


@dataclass(frozen=True)
class SpeculationPolicy:
    """When to launch a backup copy of a slow task (first result wins).

    Once at least ``quantile`` of the batch has completed, any task still
    running after ``max(min_runtime_seconds, multiplier * median)`` of
    the completed durations is speculated once.  Mirrors Spark's
    ``spark.speculation.{multiplier,quantile}`` knobs.
    """

    multiplier: float = 1.5
    quantile: float = 0.5
    min_runtime_seconds: float = 0.01
    poll_interval_seconds: float = 0.005

    def threshold(
        self, durations: Sequence[float], n_total: int
    ) -> float | None:
        """Straggler cutoff, or ``None`` while too few tasks finished."""
        need = max(1, math.ceil(self.quantile * n_total))
        if len(durations) < need:
            return None
        return max(
            self.min_runtime_seconds,
            self.multiplier * statistics.median(durations),
        )


@dataclass
class RecoveryStats:
    """Counters produced by one :func:`run_with_recovery` batch."""

    tasks_failed: int = 0
    tasks_retried: int = 0
    tasks_speculated: int = 0
    recompute_bytes: int = 0


def _guard(task: Task) -> Callable[[], TaskOutcome]:
    """Turn a task into one that reports failure instead of raising."""

    def guarded() -> TaskOutcome:
        try:
            return TaskOutcome(value=task())
        except Exception as exc:  # noqa: BLE001 - outcome channel
            return TaskOutcome(error=exc)

    return guarded


def _result_nbytes(obj: Any) -> int:
    """Total ndarray payload bytes in a task result tree."""
    if isinstance(obj, np.ndarray):
        return obj.nbytes
    if isinstance(obj, (tuple, list)):
        return sum(_result_nbytes(o) for o in obj)
    if isinstance(obj, dict):
        return sum(_result_nbytes(v) for v in obj.values())
    return 0


class Executor:
    """Runs a batch of independent zero-argument tasks, preserving order.

    Results are positionally aligned with ``tasks`` no matter in which
    order the backend completes them — the determinism contract the RDD
    layer relies on.  Subclasses must override at least one of ``run``
    (raise-on-first-error values) or ``run_outcomes`` (per-task
    :class:`TaskOutcome` records); each base method is implemented in
    terms of the other.
    """

    name = "abstract"

    def __init__(self, workers: int | None = None) -> None:
        workers = default_workers() if workers is None else int(workers)
        if workers < 1:
            raise ValueError("local_workers must be >= 1")
        self.workers = workers
        self._closed = False

    def run(self, tasks: Sequence[Task]) -> list[Any]:
        return [outcome.unwrap() for outcome in self.run_outcomes(tasks)]

    def run_outcomes(
        self,
        tasks: Sequence[Task],
        *,
        speculation: SpeculationPolicy | None = None,
        speculative_tasks: Sequence[Task] | None = None,
        on_speculate: Callable[[int], None] | None = None,
    ) -> list[TaskOutcome]:
        """Run a batch, one :class:`TaskOutcome` per task.

        ``speculative_tasks`` are clean backup copies, positionally
        aligned with ``tasks``; backends that cannot observe in-flight
        tasks (this base implementation, used by ``serial``) ignore
        speculation — it is an optimisation, never a correctness hook.
        """
        del speculation, speculative_tasks, on_speculate
        return list(self.run([_guard(task) for task in tasks]))

    def close(self) -> None:
        """Release pooled resources (idempotent)."""
        self._closed = True

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}(workers={self.workers})"


class SerialExecutor(Executor):
    """The original behaviour: run every task in the driver loop."""

    name = "serial"

    def run(self, tasks: Sequence[Task]) -> list[Any]:
        return [task() for task in tasks]


class _TimedCall:
    """Callable wrapper recording its own start time and duration, so
    speculation only considers tasks that actually started running."""

    __slots__ = ("fn", "started", "duration")

    def __init__(self, fn: Callable[[], TaskOutcome]) -> None:
        self.fn = fn
        self.started: float | None = None
        self.duration: float | None = None

    def __call__(self) -> TaskOutcome:
        self.started = time.monotonic()
        outcome = self.fn()
        self.duration = time.monotonic() - self.started
        return outcome


class ThreadExecutor(Executor):
    """Thread-pool backend; parallel because the kernels release the GIL."""

    name = "threads"

    def __init__(self, workers: int | None = None) -> None:
        super().__init__(workers)
        self._pool: ThreadPoolExecutor | None = None

    def _ensure_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.workers, thread_name_prefix="repro-exec"
            )
        return self._pool

    def run(self, tasks: Sequence[Task]) -> list[Any]:
        if len(tasks) <= 1 or self.workers == 1:
            return [task() for task in tasks]
        return list(self._ensure_pool().map(lambda task: task(), tasks))

    def run_outcomes(
        self,
        tasks: Sequence[Task],
        *,
        speculation: SpeculationPolicy | None = None,
        speculative_tasks: Sequence[Task] | None = None,
        on_speculate: Callable[[int], None] | None = None,
    ) -> list[TaskOutcome]:
        if speculation is None or len(tasks) <= 1 or self.workers == 1:
            return super().run_outcomes(tasks)
        return self._run_speculative(
            tasks, speculation, speculative_tasks or tasks, on_speculate
        )

    def _run_speculative(
        self,
        tasks: Sequence[Task],
        policy: SpeculationPolicy,
        duplicates: Sequence[Task],
        on_speculate: Callable[[int], None] | None,
    ) -> list[TaskOutcome]:
        n = len(tasks)
        pool = self._ensure_pool()
        outcomes: list[TaskOutcome | None] = [None] * n
        durations: list[float] = []
        speculated: set[int] = set()
        futures: dict[Any, tuple[int, _TimedCall]] = {}
        for i, task in enumerate(tasks):
            call = _TimedCall(_guard(task))
            futures[pool.submit(call)] = (i, call)
        while any(o is None for o in outcomes):
            done, _ = futures_wait(
                list(futures),
                timeout=policy.poll_interval_seconds,
                return_when=FIRST_COMPLETED,
            )
            for fut in done:
                i, call = futures.pop(fut)
                outcome = fut.result()  # guarded: never raises
                if outcomes[i] is None:
                    outcomes[i] = outcome
                    if call.duration is not None:
                        durations.append(call.duration)
            threshold = policy.threshold(durations, n)
            if threshold is None:
                continue
            now = time.monotonic()
            for fut, (i, call) in list(futures.items()):
                if (
                    outcomes[i] is None
                    and i not in speculated
                    and call.started is not None
                    and now - call.started > threshold
                ):
                    speculated.add(i)
                    backup = _TimedCall(_guard(duplicates[i]))
                    futures[pool.submit(backup)] = (i, backup)
                    if on_speculate is not None:
                        on_speculate(i)
        # Loser duplicates still queued or running are abandoned: their
        # results are pure values with no external resources to release.
        return outcomes  # type: ignore[return-value]

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        super().close()


# ----------------------------------------------------------------------
# Process backend: fork-per-task workers, shared-memory result transport.
# ----------------------------------------------------------------------

# Arrays smaller than this ride the normal pickle channel; the fixed cost
# of creating/opening a shared-memory segment only pays off above it.
_SHM_MIN_BYTES = 1 << 16


class _ShmArray:
    """Pickle-cheap handle to an ndarray parked in shared memory."""

    __slots__ = ("segment", "shape", "dtype")

    def __init__(self, segment: str, shape: tuple, dtype: str) -> None:
        self.segment = segment
        self.shape = shape
        self.dtype = dtype

    def __getstate__(self):
        return (self.segment, self.shape, self.dtype)

    def __setstate__(self, state):
        self.segment, self.shape, self.dtype = state


def _pack(obj: Any) -> Any:
    """Swap large ndarrays in a result tree for shared-memory handles."""
    if isinstance(obj, np.ndarray) and obj.nbytes >= _SHM_MIN_BYTES:
        seg = shared_memory.SharedMemory(create=True, size=obj.nbytes)
        np.ndarray(obj.shape, obj.dtype, buffer=seg.buf)[...] = obj
        handle = _ShmArray(seg.name, obj.shape, obj.dtype.str)
        seg.close()
        return handle
    if isinstance(obj, tuple):
        return tuple(_pack(o) for o in obj)
    if isinstance(obj, list):
        return [_pack(o) for o in obj]
    if isinstance(obj, dict):
        return {k: _pack(v) for k, v in obj.items()}
    return obj


def _unpack(obj: Any) -> Any:
    """Materialise shared-memory handles back into driver-owned arrays."""
    if isinstance(obj, _ShmArray):
        seg = shared_memory.SharedMemory(name=obj.segment)
        try:
            arr = np.ndarray(
                obj.shape, np.dtype(obj.dtype), buffer=seg.buf
            ).copy()
        finally:
            seg.close()
            seg.unlink()
        return arr
    if isinstance(obj, tuple):
        return tuple(_unpack(o) for o in obj)
    if isinstance(obj, list):
        return [_unpack(o) for o in obj]
    if isinstance(obj, dict):
        return {k: _unpack(v) for k, v in obj.items()}
    return obj


def _discard_packed(obj: Any) -> None:
    """Release a packed result without materialising it — used to drain
    the losing copy of a speculated task so its segments don't leak."""
    if isinstance(obj, _ShmArray):
        try:
            seg = shared_memory.SharedMemory(name=obj.segment)
        except FileNotFoundError:  # already unlinked
            return
        seg.close()
        seg.unlink()
    elif isinstance(obj, (tuple, list)):
        for item in obj:
            _discard_packed(item)
    elif isinstance(obj, dict):
        for item in obj.values():
            _discard_packed(item)


def _picklable_error(exc: BaseException) -> BaseException:
    """The exception itself if it pickles, else a text stand-in."""
    try:
        pickle.loads(pickle.dumps(exc))
        return exc
    except Exception:  # noqa: BLE001 - any pickle failure
        detail = "".join(
            traceback.format_exception(type(exc), exc, exc.__traceback__)
        )
        return RemoteTaskError(f"{type(exc).__name__}: {exc}\n{detail}")


def _child_main(fn: Task, conn: mp_connection.Connection) -> None:
    """Worker-child body: run one task, report, exit immediately.

    ``os._exit`` skips the forked interpreter's atexit/cleanup machinery
    on purpose — the child must never run driver-side teardown.  An
    injected "kill" never reaches the send: the task itself ``os._exit``s
    with a nonzero code and the driver sees a silent death.
    """
    status = 0
    try:
        try:
            value = fn()
        except BaseException as exc:  # noqa: BLE001 - outcome channel
            conn.send(("err", _picklable_error(exc)))
        else:
            conn.send(("ok", _pack(value)))
        conn.close()
    except BaseException:  # pragma: no cover - broken pipe to driver
        status = 1
    finally:
        os._exit(status)


@dataclass
class _Child:
    """Driver-side record of one in-flight worker process."""

    index: int
    proc: Any
    conn: mp_connection.Connection
    started: float
    speculative: bool = False


# Process executors with possibly-live children, reaped at interpreter
# exit so an aborted run can't leave orphan workers behind.
_LIVE_PROCESS_EXECUTORS: "weakref.WeakSet[ProcessExecutor]" = weakref.WeakSet()
_REAPER_REGISTERED = False


def _reap_leaked_children() -> None:
    for executor in list(_LIVE_PROCESS_EXECUTORS):
        executor.close()


class ProcessExecutor(Executor):
    """Fork-per-task process backend with shared-memory result transport.

    Each task runs in its own forked child (inheriting the task closure
    copy-on-write), reporting through a dedicated pipe; the driver waits
    on both the pipe and the process *sentinel*, so a child that dies
    without reporting — a crash, an injected kill — surfaces as a
    :class:`WorkerDied` outcome for that one task instead of hanging or
    aborting the batch.
    """

    name = "processes"

    def __init__(self, workers: int | None = None) -> None:
        super().__init__(workers)
        if "fork" not in mp.get_all_start_methods():
            raise ValueError(
                "the 'processes' backend needs the fork start method "
                "(unavailable on this platform); use 'threads' instead"
            )
        self._children: set[Any] = set()
        global _REAPER_REGISTERED
        _LIVE_PROCESS_EXECUTORS.add(self)
        if not _REAPER_REGISTERED:
            atexit.register(_reap_leaked_children)
            _REAPER_REGISTERED = True

    def run_outcomes(
        self,
        tasks: Sequence[Task],
        *,
        speculation: SpeculationPolicy | None = None,
        speculative_tasks: Sequence[Task] | None = None,
        on_speculate: Callable[[int], None] | None = None,
    ) -> list[TaskOutcome]:
        if not tasks:
            return []
        if len(tasks) <= 1 or self.workers == 1:
            # In-driver fallback: injected kills degrade to
            # SimulatedWorkerDeath (see FaultPlan.wrap), handled the same
            # way by the recovery layer.
            return [_guard(task)() for task in tasks]
        return self._run_forked(
            tasks, speculation, speculative_tasks or tasks, on_speculate
        )

    # ------------------------------------------------------------------
    def _spawn(
        self, ctx: Any, index: int, fn: Task, *, speculative: bool
    ) -> _Child:
        recv_conn, send_conn = ctx.Pipe(duplex=False)
        proc = ctx.Process(
            target=_child_main, args=(fn, send_conn), daemon=True
        )
        proc.start()
        send_conn.close()
        self._children.add(proc)
        return _Child(
            index=index,
            proc=proc,
            conn=recv_conn,
            started=time.monotonic(),
            speculative=speculative,
        )

    def _retire(self, child: _Child, *, kill: bool = False) -> None:
        """Drain, stop and reap one child (used for losers and cleanup)."""
        try:
            if child.conn.poll(0.05 if kill else 0):
                tag, payload = child.conn.recv()
                if tag == "ok":
                    _discard_packed(payload)
        except (EOFError, OSError):
            pass
        if kill and child.proc.is_alive():
            child.proc.terminate()
        child.proc.join(timeout=5.0)
        child.conn.close()
        self._children.discard(child.proc)

    def _run_forked(
        self,
        tasks: Sequence[Task],
        policy: SpeculationPolicy | None,
        duplicates: Sequence[Task],
        on_speculate: Callable[[int], None] | None,
    ) -> list[TaskOutcome]:
        # Start the resource tracker *before* forking so parent and
        # workers share one tracker: segments registered by a worker at
        # create are unregistered by the driver's unlink, and nothing is
        # reported leaked.
        from multiprocessing import resource_tracker

        resource_tracker.ensure_running()
        ctx = mp.get_context("fork")
        n = len(tasks)
        outcomes: list[TaskOutcome | None] = [None] * n
        held_errors: dict[int, BaseException] = {}
        durations: list[float] = []
        speculated: set[int] = set()
        pending: deque[int] = deque(range(n))
        active: list[_Child] = []
        try:
            while any(o is None for o in outcomes):
                while pending and len(active) < self.workers:
                    i = pending.popleft()
                    active.append(
                        self._spawn(ctx, i, tasks[i], speculative=False)
                    )
                waitmap: dict[Any, _Child] = {}
                for child in active:
                    waitmap[child.conn] = child
                    waitmap[child.proc.sentinel] = child
                timeout = (
                    policy.poll_interval_seconds if policy is not None else None
                )
                ready = mp_connection.wait(list(waitmap), timeout=timeout)
                handled: set[int] = set()
                for obj in ready:
                    child = waitmap[obj]
                    if id(child) in handled:
                        continue
                    handled.add(id(child))
                    self._complete(child, outcomes, held_errors, durations, active)
                if policy is None:
                    continue
                threshold = policy.threshold(durations, n)
                if threshold is None:
                    continue
                now = time.monotonic()
                for child in list(active):
                    if (
                        not child.speculative
                        and child.index not in speculated
                        and outcomes[child.index] is None
                        and now - child.started > threshold
                        and len(active) < self.workers
                    ):
                        speculated.add(child.index)
                        active.append(
                            self._spawn(
                                ctx,
                                child.index,
                                duplicates[child.index],
                                speculative=True,
                            )
                        )
                        if on_speculate is not None:
                            on_speculate(child.index)
        finally:
            for child in list(active):
                self._retire(child, kill=True)
        return outcomes  # type: ignore[return-value]

    def _complete(
        self,
        child: _Child,
        outcomes: list[TaskOutcome | None],
        held_errors: dict[int, BaseException],
        durations: list[float],
        active: list[_Child],
    ) -> None:
        """Absorb one ready child: a result, an error, or a death."""
        msg = None
        try:
            if child.conn.poll():
                msg = child.conn.recv()
        except (EOFError, OSError):
            msg = None
        active.remove(child)
        child.proc.join(timeout=5.0)
        child.conn.close()
        self._children.discard(child.proc)
        i = child.index
        if msg is not None and msg[0] == "ok":
            if outcomes[i] is None:
                outcomes[i] = TaskOutcome(value=_unpack(msg[1]))
                durations.append(time.monotonic() - child.started)
            else:  # losing copy of a speculated task
                _discard_packed(msg[1])
            return
        if msg is not None:  # ("err", exception)
            held_errors[i] = msg[1]
        else:
            exitcode = child.proc.exitcode
            held_errors.setdefault(
                i,
                WorkerDied(
                    f"worker for task {i} exited with code {exitcode} "
                    "before reporting a result"
                ),
            )
        # Only conclude failure once no other copy of the task is still
        # running (a speculative duplicate may yet succeed).
        if outcomes[i] is None and not any(c.index == i for c in active):
            outcomes[i] = TaskOutcome(error=held_errors[i])

    def close(self) -> None:
        for proc in list(self._children):
            if proc.is_alive():
                proc.terminate()
            proc.join(timeout=5.0)
            self._children.discard(proc)
        super().close()


# ----------------------------------------------------------------------
# Lineage-based recovery: retry rounds with backoff over run_outcomes.
# ----------------------------------------------------------------------

def run_with_recovery(
    executor: Executor,
    tasks: Sequence[Task],
    *,
    fault_plan: FaultPlan | None = None,
    batch: int = 0,
    max_task_retries: int = 3,
    backoff_seconds: float = 0.01,
    speculation: SpeculationPolicy | None = None,
    stats: RecoveryStats | None = None,
) -> list[Any]:
    """Run a task batch, retrying failed tasks from lineage.

    Each engine task closure captures its materialised anchor partitions
    (source arrays or ``persist()``-ed blocks), so re-invoking a failed
    task recomputes exactly the lost partition's fused operator chain
    from its narrowest persisted or source ancestor — the Spark recovery
    model at batch granularity.  A task may fail up to
    ``max_task_retries`` times; rounds are separated by exponential
    backoff (``backoff_seconds * 2**(round-1)``, capped at 1s).  When the
    budget is exhausted the *original* exception is re-raised.

    ``fault_plan`` wraps each attempt with its deterministic injection
    verdict (attempt numbers advance per failure, so a plan with
    ``max_failures_per_task <= max_task_retries`` always converges);
    speculative duplicates are dispatched at the injection horizon and
    therefore always run clean.
    """
    n = len(tasks)
    if n == 0:
        return []
    plan = (
        fault_plan
        if fault_plan is not None and not fault_plan.is_zero
        else None
    )
    driver_pid = os.getpid()
    if stats is None:
        stats = RecoveryStats()
    results: list[Any] = [None] * n
    failures = [0] * n
    pending = list(range(n))
    round_no = 0
    while pending:
        if round_no > 0:
            time.sleep(min(backoff_seconds * (2 ** (round_no - 1)), 1.0))
        if plan is not None:
            wrapped = [
                plan.wrap(
                    tasks[i],
                    batch=batch,
                    index=i,
                    attempt=failures[i],
                    driver_pid=driver_pid,
                )
                for i in pending
            ]
            backups = [
                plan.wrap(
                    tasks[i],
                    batch=batch,
                    index=i,
                    attempt=plan.max_failures_per_task,
                    driver_pid=driver_pid,
                )
                for i in pending
            ]
        else:
            wrapped = [tasks[i] for i in pending]
            backups = wrapped

        def _count_speculation(_index: int) -> None:
            stats.tasks_speculated += 1

        outcomes = executor.run_outcomes(
            wrapped,
            speculation=speculation,
            speculative_tasks=backups,
            on_speculate=_count_speculation,
        )
        next_pending: list[int] = []
        for pos, i in enumerate(pending):
            outcome = outcomes[pos]
            if outcome.ok:
                results[i] = outcome.value
                if round_no > 0:
                    # Tasks that know their lineage (fused chains) expose
                    # a `recovery_bytes` accountant covering every re-run
                    # operator segment plus any non-durable anchor; plain
                    # tasks fall back to the result's payload size.
                    accountant = getattr(tasks[i], "recovery_bytes", None)
                    if accountant is not None:
                        stats.recompute_bytes += int(
                            accountant(outcome.value)
                        )
                    else:
                        stats.recompute_bytes += _result_nbytes(
                            outcome.value
                        )
                continue
            stats.tasks_failed += 1
            failures[i] += 1
            if failures[i] > max_task_retries:
                error = outcome.error
                if hasattr(error, "add_note"):
                    error.add_note(
                        f"task {i} of batch {batch} failed {failures[i]} "
                        f"time(s); max_task_retries={max_task_retries} "
                        "exhausted"
                    )
                raise error
            stats.tasks_retried += 1
            next_pending.append(i)
        pending = next_pending
        round_no += 1
    return results


# ----------------------------------------------------------------------
_BACKENDS: dict[str, type[Executor]] = {
    SerialExecutor.name: SerialExecutor,
    ThreadExecutor.name: ThreadExecutor,
    ProcessExecutor.name: ProcessExecutor,
}


def available_backends() -> tuple[str, ...]:
    return tuple(_BACKENDS)


def resolve_backend(name: str | None = None) -> str:
    """Resolve a backend name: explicit argument > env var > ``serial``."""
    if name is None:
        name = os.environ.get(EXECUTOR_ENV_VAR) or SerialExecutor.name
    name = name.strip().lower()
    if name not in _BACKENDS:
        raise ValueError(
            f"unknown executor backend {name!r}; "
            f"choose from {', '.join(_BACKENDS)}"
        )
    return name


def _resolve_workers(workers: int | None) -> int | None:
    if workers is not None:
        return workers
    env = os.environ.get(WORKERS_ENV_VAR)
    if env is None or not env.strip():
        return None
    try:
        value = int(env)
    except ValueError as exc:
        raise ValueError(
            f"{WORKERS_ENV_VAR} must be an integer, got {env!r}"
        ) from exc
    if value < 1:
        raise ValueError(f"{WORKERS_ENV_VAR} must be >= 1, got {env!r}")
    return value


def make_executor(
    name: str | None = None, workers: int | None = None
) -> Executor:
    """Instantiate a backend; ``None`` arguments fall back to the
    ``REPRO_EXECUTOR`` / ``REPRO_LOCAL_WORKERS`` environment variables,
    then to ``serial`` with one worker per CPU."""
    return _BACKENDS[resolve_backend(name)](_resolve_workers(workers))
