"""Engine wall-clock benchmark: executor backends + shuffle memory.

Unlike the ``bench_fig*`` modules, which read the *simulated* cluster
clock, this bench times *real* elapsed seconds — the thing the pluggable
executor layer (serial / threads / processes) accelerates — and tracks
it from PR to PR via ``benchmarks/results/BENCH_engine.json``:

* PGPBA and PGSK generation wall time per backend at 10^5-10^6 edges
  (parallel backends swept at 2 and 4 workers), with the speedup over
  ``serial``, the logical-to-physical task counts before/after adaptive
  partition coalescing, the per-backend transport overhead breakdown
  (submit/serialize/ipc/compute), and a digest of the output graph
  proving every backend produced the bit-identical dataset;
* the socket cluster backend versus the local pool (section ``cluster``):
  PGPBA/PGSK wall at 2 and 4 loopback worker daemons with the network
  transport breakdown (bytes on the wire, round trips, serialize and
  ipc-wait shares), asserting the cluster digest matches the pool digest
  bit for bit;
* the pipelined, compressed wire against its own stop-and-wait baseline
  (section ``cluster_transport``): PGPBA at in-flight depth 1 + wire
  codec off (the pre-pipelining transport, reconstructed) versus the
  shipping defaults (depth 2 + zlib), reporting wall vs the local pool,
  raw-vs-wire bytes with the compression ratio, the dispatch overlap
  fraction, and a prefetch micro-bench (chunk-streamed shuffle segments
  with one background prefetch connection, hit rate reported) — digests
  asserted to match the pool bit for bit in every configuration;
* peak driver memory of ``distinct()`` under the hash-exchange shuffle
  versus the legacy collect-everything shuffle (tracemalloc peaks on the
  serial backend, so only the shuffle structure differs);
* the lazy-DAG stage-fusion win: a 10^6-row grow/transform/contract/
  distinct pipeline timed and tracemalloc-metered with fusion on versus
  ``REPRO_FUSION=off``, asserting the fused run is >= 1.3x better on
  wall clock or peak memory while producing the byte-identical dataset
  and the identical simulated stage structure;
* the cost of fault recovery: the same pipeline under a seeded
  ``FaultPlan`` (exceptions + killed workers + stragglers) versus
  fault-free, asserting the recovered run produced the byte-identical
  dataset and identical simulated stage structure, and reporting the
  wall-clock overhead plus the recovery counters;
* the block-store spill path: a 10^7-row grow/distinct pipeline under an
  unlimited memory budget versus a 64 MiB one, asserting byte-identical
  datasets and stage structures while the budgeted run's peak
  tracemalloc stays near the budget and the overflow lands on disk
  (reported: peaks, disk high-water, spill/reload counts, wall ratio);
* the block codec trade-off surface: the same spill pipeline once per
  codec (raw / zlib / lzma / mmap) under a tight 8 MiB budget,
  asserting byte-identical datasets and stage structures while
  reporting disk written, compression ratio and real encode/decode
  seconds per codec;
* out-of-core generation: weak-scaling PGPBA structure growth to 10^8
  edges under a 1 GiB budget with the zlib codec and the external-sort
  shuffle (wall, edges/s, tracemalloc peak vs budget, disk high-water,
  compression ratio), plus a parity matrix re-growing the smallest size
  on every backend x codec under an 8 MiB budget and asserting digest +
  stage equality with an unbudgeted in-memory reference run.

``REPRO_BENCH_SMOKE=1`` shrinks the sweep to a CI-sized smoke run
(~30 s); ``REPRO_BENCH_EDGES`` overrides the size list directly, e.g.
``REPRO_BENCH_EDGES=100000,1000000``; ``REPRO_BENCH_OOC_EDGES``
overrides the out-of-core size list the same way.

Run directly (``PYTHONPATH=src python benchmarks/bench_engine_wallclock.py``)
or via pytest like the figure benches.
"""

from __future__ import annotations

import hashlib
import json
import os
import tracemalloc
from pathlib import Path

import numpy as np

from repro.bench import cached_seed, format_table, measure_wall
from repro.core import PGPBA, PGSK
from repro.engine import ClusterContext, available_backends

RESULTS_DIR = Path(__file__).parent / "results"
JSON_PATH = RESULTS_DIR / "BENCH_engine.json"

# The generic sweeps cover the local backends; `cluster` needs live
# worker daemons, so it gets its own section (run_cluster_transport)
# that launches loopback daemons for the duration.
BACKENDS = tuple(b for b in available_backends() if b != "cluster")


def _worker_matrix(backend: str) -> tuple[int | None, ...]:
    """Worker counts swept per backend: serial is single-stream by
    definition; the parallel backends run at 2 and 4 workers so the
    JSON tracks how the pool's fork-once amortization scales."""
    if backend == "serial":
        return (None,)
    if os.environ.get("REPRO_BENCH_SMOKE"):
        return (2,)
    return (2, 4)


def _sizes() -> list[int]:
    override = os.environ.get("REPRO_BENCH_EDGES")
    if override:
        return [int(s) for s in override.split(",") if s.strip()]
    if os.environ.get("REPRO_BENCH_SMOKE"):
        return [50_000]
    return [100_000, 1_000_000]


def _shuffle_rows() -> int:
    if os.environ.get("REPRO_BENCH_SMOKE"):
        return 200_000
    return 1_000_000


def _context(backend: str, workers: int | None = None) -> ClusterContext:
    # A small simulated cluster whose 32 real partitions give every local
    # worker something to chew on; the simulated shapes are identical
    # across backends, only the wall clock differs.  Parallel backends
    # run even on a 1-CPU host so the dispatch path (thread pool /
    # fork + pipes / pool + shared memory) is genuinely exercised —
    # there a speedup near 1.0 is the expected outcome, not a failure.
    if workers is None:
        workers = os.cpu_count() or 1
        if backend != "serial":
            workers = max(2, workers)
    return ClusterContext(
        n_nodes=4, executor_cores=12, partition_multiplier=2,
        executor=backend, local_workers=workers,
    )


def _graph_digest(graph) -> str:
    """Order-sensitive digest of the full (src, dst, properties) dataset."""
    h = hashlib.sha256()
    h.update(np.ascontiguousarray(graph.src).tobytes())
    h.update(np.ascontiguousarray(graph.dst).tobytes())
    for name in sorted(graph.edge_properties):
        h.update(name.encode())
        h.update(np.ascontiguousarray(graph.edge_properties[name]).tobytes())
    return h.hexdigest()[:16]


# ----------------------------------------------------------------------
def run_backend_sweep(seed_bundle) -> list[dict]:
    """Wall-clock generation per (algorithm, size, backend, workers)."""
    graph, analysis = seed_bundle.graph, seed_bundle.analysis
    pgsk = PGSK(seed=11, kronfit_iterations=8, kronfit_swaps=30)
    initiator = pgsk.fit_initiator(graph)
    records: list[dict] = []
    for size in _sizes():
        for algo in ("PGPBA", "PGSK"):
            serial_wall = None
            for backend in BACKENDS:
                for workers in _worker_matrix(backend):
                    with _context(backend, workers) as ctx:
                        if algo == "PGPBA":
                            result, wall = measure_wall(
                                lambda: PGPBA(
                                    fraction=2.0, seed=11
                                ).generate(
                                    graph, analysis, size, context=ctx
                                )
                            )
                        else:
                            result, wall = measure_wall(
                                lambda: pgsk.generate(
                                    graph, analysis, size,
                                    context=ctx, initiator=initiator,
                                )
                            )
                        m = ctx.metrics
                        transport = m.transport_breakdown()
                        emitted = m.tasks_emitted
                        dispatched = m.tasks_dispatched
                        inlined = m.tasks_inlined
                        ratio = m.dispatch_ratio
                    if backend == "serial":
                        serial_wall = wall
                    records.append(
                        {
                            "algorithm": algo,
                            "target_edges": size,
                            "backend": backend,
                            "workers": ctx.executor.workers,
                            "edges": int(result.graph.n_edges),
                            "wall_seconds": round(wall, 4),
                            "speedup_vs_serial": round(
                                serial_wall / wall, 3
                            ),
                            "simulated_seconds": round(
                                result.total_seconds, 4
                            ),
                            "n_tasks": ctx.metrics.n_tasks,
                            # Coalescing: logical tasks before, physical
                            # executor dispatches after (+ empty chains
                            # run inline in the driver).
                            "tasks_emitted": int(emitted),
                            "tasks_dispatched": int(dispatched),
                            "tasks_inlined": int(inlined),
                            "dispatch_ratio": round(ratio, 3),
                            # Per-backend wall-clock overhead breakdown.
                            "transport": {
                                k: (round(v, 4) if isinstance(v, float)
                                    else int(v))
                                for k, v in transport.items()
                            },
                            "digest": _graph_digest(result.graph),
                        }
                    )
    return records


def run_shuffle_memory() -> dict:
    """Peak driver memory of distinct(): hash exchange vs legacy collect."""
    rows = _shuffle_rows()
    peaks: dict[str, int] = {}
    for shuffle in ("collect", "exchange"):
        ctx = ClusterContext(
            n_nodes=4, executor_cores=12, partition_multiplier=2,
            executor="serial",
        )
        rng = np.random.default_rng(5)
        src = rng.integers(0, rows // 2, size=rows, dtype=np.int64)
        dst = rng.integers(0, rows // 2, size=rows, dtype=np.int64)
        rdd = ctx.parallelize([src, dst])
        tracemalloc.start()
        tracemalloc.reset_peak()
        rdd.distinct(key_columns=(0, 1), shuffle=shuffle)
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        peaks[shuffle] = int(peak)
    return {
        "rows": rows,
        "collect_peak_bytes": peaks["collect"],
        "exchange_peak_bytes": peaks["exchange"],
        "exchange_over_collect": round(
            peaks["exchange"] / max(1, peaks["collect"]), 3
        ),
    }


def _fusion_pipeline(ctx: ClusterContext, rows: int):
    """Growth-shaped chain: expand x4, transform, contract, distinct.

    Eagerly evaluated, every intermediate (including the 4x-expanded
    dataset) is materialized in full before the next stage starts; fused,
    each partition flows through the whole narrow chain in one task and
    only the final contracted dataset is ever resident.
    """
    rng = np.random.default_rng(23)
    src = rng.integers(0, rows // 2, size=rows, dtype=np.int64)
    dst = rng.integers(0, rows // 2, size=rows, dtype=np.int64)
    base = ctx.parallelize([src, dst])
    grown = base.map_partitions(
        lambda c, p: (np.repeat(c[0], 4), np.repeat(c[1], 4)),
        stage="fuse:grow",
    )
    mixed = grown.map_partitions(
        lambda c, p: (c[0] * 3 + p, c[0] ^ c[1]), stage="fuse:mix"
    )
    slim = mixed.map_partitions(
        lambda c, p: (c[0][::4].copy(), c[1][::4].copy()),
        stage="fuse:contract",
    )
    final = slim.distinct(key_columns=(0, 1), stage="fuse:distinct")
    return final.collect()


def _stage_structure(ctx: ClusterContext) -> list[tuple]:
    """Simulated stage records minus the measured times."""
    return [
        (r.stage, r.partition, r.node, r.bytes_out)
        for r in ctx.metrics.tasks
    ]


def run_fusion_comparison() -> dict:
    """Wall clock + peak driver memory, fusion on vs off (serial backend,
    so only the evaluation strategy differs).  Wall and memory are
    measured in separate runs: tracemalloc's allocation hooks would skew
    the timed pass."""
    rows = _shuffle_rows()
    modes: dict[str, dict] = {}
    structures: dict[str, list] = {}
    for mode in ("fused", "eager"):
        fusion = mode == "fused"
        with ClusterContext(
            n_nodes=4, executor_cores=12, partition_multiplier=2,
            executor="serial", fusion=fusion,
        ) as ctx:
            cols, wall = measure_wall(lambda: _fusion_pipeline(ctx, rows))
            structures[mode] = _stage_structure(ctx)
            h = hashlib.sha256()
            for c in cols:
                h.update(np.ascontiguousarray(c).tobytes())
        with ClusterContext(
            n_nodes=4, executor_cores=12, partition_multiplier=2,
            executor="serial", fusion=fusion,
        ) as ctx_mem:
            tracemalloc.start()
            tracemalloc.reset_peak()
            _fusion_pipeline(ctx_mem, rows)
            _, peak = tracemalloc.get_traced_memory()
            tracemalloc.stop()
        modes[mode] = {
            "wall_seconds": round(wall, 4),
            "peak_tracemalloc_bytes": int(peak),
            "digest": h.hexdigest()[:16],
            "n_tasks": len(structures[mode]),
        }
    return {
        "rows": rows,
        "fused": modes["fused"],
        "eager": modes["eager"],
        "wall_eager_over_fused": round(
            modes["eager"]["wall_seconds"]
            / max(1e-9, modes["fused"]["wall_seconds"]),
            3,
        ),
        "mem_eager_over_fused": round(
            modes["eager"]["peak_tracemalloc_bytes"]
            / max(1, modes["fused"]["peak_tracemalloc_bytes"]),
            3,
        ),
        "digests_match": modes["fused"]["digest"]
        == modes["eager"]["digest"],
        "stage_structure_match": structures["fused"]
        == structures["eager"],
    }


def run_fault_recovery() -> dict:
    """Wall-clock overhead of recovering a faulted run vs a clean one.

    The same growth-shaped pipeline runs twice on the threads backend:
    once fault-free and once under a seeded plan injecting exceptions,
    worker deaths and stragglers (horizon 2 < the default retry budget
    of 3, so convergence is guaranteed).  The recovered dataset and the
    simulated stage structure must be bit-identical — recovery is a
    wall-clock-only phenomenon."""
    from repro.engine import FaultPlan

    rows = _shuffle_rows() // 4
    plan = FaultPlan(
        seed=29, p_exception=0.15, p_kill=0.1, p_straggler=0.05,
        straggler_seconds=0.002, max_failures_per_task=2,
    )
    runs: dict[str, dict] = {}
    structures: dict[str, list] = {}
    for mode, fault_plan in (("clean", FaultPlan()), ("faulted", plan)):
        with ClusterContext(
            n_nodes=4, executor_cores=12, partition_multiplier=2,
            executor="threads", local_workers=max(2, os.cpu_count() or 1),
            fault_plan=fault_plan, retry_backoff_seconds=0.001,
        ) as ctx:
            cols, wall = measure_wall(lambda: _fusion_pipeline(ctx, rows))
            structures[mode] = _stage_structure(ctx)
            h = hashlib.sha256()
            for c in cols:
                h.update(np.ascontiguousarray(c).tobytes())
        runs[mode] = {
            "wall_seconds": round(wall, 4),
            "digest": h.hexdigest()[:16],
            "tasks_failed": ctx.metrics.tasks_failed,
            "tasks_retried": ctx.metrics.tasks_retried,
            "tasks_speculated": ctx.metrics.tasks_speculated,
            "recovery_recompute_bytes": ctx.metrics.recovery_recompute_bytes,
        }
    return {
        "rows": rows,
        "plan": plan.to_dict(),
        "clean": runs["clean"],
        "faulted": runs["faulted"],
        "wall_faulted_over_clean": round(
            runs["faulted"]["wall_seconds"]
            / max(1e-9, runs["clean"]["wall_seconds"]),
            3,
        ),
        "digests_match": runs["clean"]["digest"]
        == runs["faulted"]["digest"],
        "stage_structure_match": structures["clean"]
        == structures["faulted"],
    }


def _spill_rows() -> int:
    if os.environ.get("REPRO_BENCH_SMOKE"):
        return 1_000_000
    return 10_000_000


def _spill_budget() -> int:
    if os.environ.get("REPRO_BENCH_SMOKE"):
        return 8 * 2**20
    return 64 * 2**20


def _spill_pipeline(ctx: ClusterContext, rows: int):
    """Grow/distinct at scale: per-partition generation (the driver never
    builds the input), a x2 expansion, then the hash-exchange shuffle.
    Returns the distinct RDD without collecting it — collecting would
    re-materialize the whole dataset in the driver and mask the budget."""

    def _make(count, pidx):
        rng = np.random.default_rng((41, pidx))
        return (
            rng.integers(0, rows // 4, size=count, dtype=np.int64),
            rng.integers(0, rows // 4, size=count, dtype=np.int64),
        )

    base = ctx.generate(rows, _make, stage="spill:make")
    grown = base.map_partitions(
        lambda c, p: (np.repeat(c[0], 2), np.repeat(c[1], 2)),
        stage="spill:grow",
    )
    return grown.distinct(
        key_columns=(0, 1), stage="spill:distinct", shuffle="exchange"
    )


def _spill_digest(rdd) -> str:
    """Order-sensitive dataset digest, one partition resident at a time."""
    h = hashlib.sha256()
    for i in range(rdd.n_partitions):
        for c in rdd._partition(i):
            h.update(np.ascontiguousarray(c).tobytes())
    return h.hexdigest()[:16]


def run_storage_spill() -> dict:
    """Driver memory of grow/distinct under a block-store budget vs
    unlimited.  Wall and tracemalloc are measured in separate runs (the
    allocation hooks would skew the timed pass); the budgeted run must
    produce the byte-identical dataset and the identical simulated stage
    structure while keeping peak driver memory near the budget, with the
    overflow on disk."""
    rows = _spill_rows()
    budget = _spill_budget()
    modes: dict[str, dict] = {}
    structures: dict[str, list] = {}
    for mode, budget_bytes in (("unlimited", None), ("budgeted", budget)):
        with ClusterContext(
            n_nodes=4, executor_cores=12, partition_multiplier=2,
            executor="serial", memory_budget_bytes=budget_bytes,
        ) as ctx:
            final, wall = measure_wall(lambda: _spill_pipeline(ctx, rows))
            structures[mode] = _stage_structure(ctx)
            digest = _spill_digest(final)
            part_bytes = int(final.partition_bytes().max(initial=0))
        with ClusterContext(
            n_nodes=4, executor_cores=12, partition_multiplier=2,
            executor="serial", memory_budget_bytes=budget_bytes,
        ) as ctx_mem:
            tracemalloc.start()
            tracemalloc.reset_peak()
            _spill_pipeline(ctx_mem, rows)
            _, peak = tracemalloc.get_traced_memory()
            tracemalloc.stop()
            m = ctx_mem.metrics
            disk_high_water = m.storage_disk_high_water_bytes
            spills, reloads = m.storage_spill_count, m.storage_reload_count
        modes[mode] = {
            "wall_seconds": round(wall, 4),
            "peak_tracemalloc_bytes": int(peak),
            "disk_high_water_bytes": int(disk_high_water),
            "spill_count": int(spills),
            "reload_count": int(reloads),
            "max_partition_bytes": part_bytes,
            "digest": digest,
        }
    return {
        "rows": rows,
        "budget_bytes": budget,
        "unlimited": modes["unlimited"],
        "budgeted": modes["budgeted"],
        "wall_budgeted_over_unlimited": round(
            modes["budgeted"]["wall_seconds"]
            / max(1e-9, modes["unlimited"]["wall_seconds"]),
            3,
        ),
        "mem_unlimited_over_budgeted": round(
            modes["unlimited"]["peak_tracemalloc_bytes"]
            / max(1, modes["budgeted"]["peak_tracemalloc_bytes"]),
            3,
        ),
        "digests_match": modes["unlimited"]["digest"]
        == modes["budgeted"]["digest"],
        "stage_structure_match": structures["unlimited"]
        == structures["budgeted"],
    }


_CODEC_NAMES = ("raw", "zlib", "lzma", "mmap")


def _codec_rows() -> int:
    if os.environ.get("REPRO_BENCH_SMOKE"):
        return 400_000
    return 4_000_000


def run_storage_codec() -> dict:
    """The grow/distinct spill pipeline under a tight budget, once per
    block codec: identical dataset and simulated stage structure by
    contract, with the disk footprint, compression ratio and real
    encode/decode seconds as the codec trade-off surface."""
    rows = _codec_rows()
    budget = 8 * 2**20  # tight: everything transits the codec
    codecs_out: dict[str, dict] = {}
    structures: dict[str, list] = {}
    for codec in _CODEC_NAMES:
        with ClusterContext(
            n_nodes=4, executor_cores=12, partition_multiplier=2,
            executor="serial", memory_budget_bytes=budget,
            block_codec=codec,
        ) as ctx:
            final, wall = measure_wall(lambda: _spill_pipeline(ctx, rows))
            digest = _spill_digest(final)
            structures[codec] = _stage_structure(ctx)
            stats = ctx.storage.stats
            codecs_out[codec] = {
                "wall_seconds": round(wall, 4),
                "disk_high_water_bytes": int(
                    ctx.metrics.storage_disk_high_water_bytes
                ),
                "disk_written_bytes": int(stats.disk_written_bytes),
                "disk_written_logical_bytes": int(
                    stats.disk_written_logical_bytes
                ),
                "compression_ratio": round(stats.compression_ratio(), 3),
                "codec_encode_seconds": round(
                    stats.codec_encode_seconds, 4
                ),
                "codec_decode_seconds": round(
                    stats.codec_decode_seconds, 4
                ),
                "digest": digest,
            }
    return {
        "rows": rows,
        "budget_bytes": budget,
        "codecs": codecs_out,
        "digests_match": len(
            {c["digest"] for c in codecs_out.values()}
        ) == 1,
        "stage_structure_match": all(
            structures[c] == structures["raw"] for c in _CODEC_NAMES
        ),
    }


def _out_of_core_sizes() -> list[int]:
    override = os.environ.get("REPRO_BENCH_OOC_EDGES")
    if override:
        return [int(s) for s in override.split(",") if s.strip()]
    if os.environ.get("REPRO_BENCH_SMOKE"):
        return [200_000, 1_000_000]
    return [1_000_000, 10_000_000, 100_000_000]


def _out_of_core_budget() -> int:
    if os.environ.get("REPRO_BENCH_SMOKE"):
        return 64 * 2**20
    return 1 << 30  # 1 GiB


def run_out_of_core(seed_bundle) -> dict:
    """Weak-scaling PGPBA structure growth to 10^8 edges, out of core.

    Each size runs ``PGPBA.grow_structure`` (no decoration, no collect)
    under the memory budget with the zlib codec and the external-sort
    shuffle; the grown edge multiset lives in spilled compressed blocks
    and the driver digests it one partition at a time.  The reported
    wall clock includes the tracemalloc hooks (one pass measures both —
    a 10^8-edge second pass would double the bench time for a constant
    factor).

    The parity matrix re-grows the smallest size on every available
    backend under every codec with an 8 MiB budget and checks digest +
    simulated-stage equality against an unbudgeted in-memory reference
    run — the out-of-core acceptance bar.
    """
    graph, analysis = seed_bundle.graph, seed_bundle.analysis
    budget = _out_of_core_budget()
    sizes = _out_of_core_sizes()
    scaling: list[dict] = []
    for size in sizes:
        with ClusterContext(
            n_nodes=4, executor_cores=12, partition_multiplier=2,
            executor="serial", memory_budget_bytes=budget,
            block_codec="zlib", shuffle="extsort",
        ) as ctx:
            gen = PGPBA(fraction=2.0, seed=11)
            tracemalloc.start()
            tracemalloc.reset_peak()
            (edges, n_vertices, iterations), wall = measure_wall(
                lambda: gen.grow_structure(
                    graph, analysis, size, context=ctx
                )
            )
            _, peak = tracemalloc.get_traced_memory()
            tracemalloc.stop()
            n_edges = int(edges.count())
            digest = _spill_digest(edges)
            m = ctx.metrics
            stats = ctx.storage.stats
            scaling.append(
                {
                    "target_edges": size,
                    "edges": n_edges,
                    "n_vertices": int(n_vertices),
                    "iterations": int(iterations),
                    "wall_seconds": round(wall, 4),
                    "edges_per_second": int(n_edges / max(wall, 1e-9)),
                    "peak_tracemalloc_bytes": int(peak),
                    "under_budget": int(peak) <= budget + 64 * 2**20,
                    "disk_high_water_bytes": int(
                        m.storage_disk_high_water_bytes
                    ),
                    "compression_ratio": round(
                        stats.compression_ratio(), 3
                    ),
                    "spill_count": int(m.storage_spill_count),
                    "reload_count": int(m.storage_reload_count),
                    "digest": digest,
                }
            )
            edges.unpersist()

    # Parity: the smallest size, unbudgeted in-memory reference vs every
    # backend x codec under an 8 MiB budget.
    parity_size = sizes[0]
    with ClusterContext(
        n_nodes=4, executor_cores=12, partition_multiplier=2,
        executor="serial",
    ) as ref_ctx:
        gen = PGPBA(fraction=2.0, seed=11)
        ref_edges, _, _ = gen.grow_structure(
            graph, analysis, parity_size, context=ref_ctx
        )
        ref_digest = _spill_digest(ref_edges)
        ref_structure = _stage_structure(ref_ctx)
        ref_edges.unpersist()
    parity: list[dict] = []
    for backend in BACKENDS:
        for codec in _CODEC_NAMES:
            with ClusterContext(
                n_nodes=4, executor_cores=12, partition_multiplier=2,
                executor=backend, memory_budget_bytes=8 * 2**20,
                block_codec=codec, shuffle="extsort",
            ) as ctx:
                gen = PGPBA(fraction=2.0, seed=11)
                edges, _, _ = gen.grow_structure(
                    graph, analysis, parity_size, context=ctx
                )
                digest = _spill_digest(edges)
                structure = _stage_structure(ctx)
                edges.unpersist()
            parity.append(
                {
                    "backend": backend,
                    "codec": codec,
                    "digest_match": digest == ref_digest,
                    "stage_structure_match": structure == ref_structure,
                }
            )
    return {
        "budget_bytes": budget,
        "scaling": scaling,
        "parity_target_edges": parity_size,
        "parity_reference_digest": ref_digest,
        "parity": parity,
        "parity_all_match": all(
            p["digest_match"] and p["stage_structure_match"]
            for p in parity
        ),
    }


def run_cluster_transport(seed_bundle) -> dict:
    """Socket cluster backend vs the local pool: PGPBA/PGSK wall clock
    plus the transport breakdown (network bytes, round trips, serialize
    and ipc-wait shares) at 2 and 4 loopback worker daemons.  The
    cluster digest must match the pool digest bit for bit."""
    from repro.engine.cluster import (
        launch_worker,
        shutdown_worker,
        sockets_available,
    )

    if not sockets_available():
        return {"skipped": "loopback sockets unavailable"}
    graph, analysis = seed_bundle.graph, seed_bundle.analysis
    pgsk = PGSK(seed=11, kronfit_iterations=8, kronfit_swaps=30)
    initiator = pgsk.fit_initiator(graph)
    size = min(_sizes())
    counts = (2,) if os.environ.get("REPRO_BENCH_SMOKE") else (2, 4)
    records: list[dict] = []
    for n_workers in counts:
        procs, addrs = [], []
        for _ in range(n_workers):
            proc, addr = launch_worker()
            procs.append(proc)
            addrs.append(addr)
        try:
            for algo in ("PGPBA", "PGSK"):

                def generate(ctx, algo=algo):
                    if algo == "PGPBA":
                        return PGPBA(fraction=2.0, seed=11).generate(
                            graph, analysis, size, context=ctx
                        )
                    return pgsk.generate(
                        graph, analysis, size,
                        context=ctx, initiator=initiator,
                    )

                with ClusterContext(
                    n_nodes=4, executor_cores=12, partition_multiplier=2,
                    executor="pool", local_workers=n_workers,
                ) as ctx:
                    result, pool_wall = measure_wall(
                        lambda: generate(ctx)
                    )
                    pool_digest = _graph_digest(result.graph)
                with ClusterContext(
                    n_nodes=4, executor_cores=12, partition_multiplier=2,
                    executor="cluster", workers=addrs,
                ) as ctx:
                    result, wall = measure_wall(lambda: generate(ctx))
                    digest = _graph_digest(result.graph)
                    transport = ctx.metrics.transport_breakdown()
                records.append(
                    {
                        "algorithm": algo,
                        "target_edges": size,
                        "workers": n_workers,
                        "wall_seconds": round(wall, 4),
                        "pool_wall_seconds": round(pool_wall, 4),
                        "cluster_over_pool": round(wall / pool_wall, 3)
                        if pool_wall
                        else None,
                        "network_bytes": int(transport["network_bytes"]),
                        "round_trips": int(transport["round_trips"]),
                        "serialize_seconds": round(
                            transport["serialize_seconds"], 4
                        ),
                        "ipc_wait_seconds": round(
                            transport["ipc_wait_seconds"], 4
                        ),
                        "digest": digest,
                        "digest_matches_pool": digest == pool_digest,
                    }
                )
        finally:
            for addr in addrs:
                shutdown_worker(addr)
            for proc in procs:
                try:
                    proc.wait(timeout=10)
                except Exception:
                    proc.kill()
    return {
        "records": records,
        "all_match": all(r["digest_matches_pool"] for r in records),
    }


def run_cluster_pipeline(seed_bundle) -> dict:
    """The pipelined, compressed wire vs its own stop-and-wait baseline:
    PGPBA wall clock at in-flight depth 1 + codec off (the PR 8
    transport, reconstructed) against the shipping defaults (depth 2 +
    zlib), with raw-vs-wire bytes, the overlap fraction and a prefetch
    micro-bench.  Digests must match the local pool bit for bit."""
    from repro.engine.cluster import (
        BlockFetcher,
        launch_worker,
        shutdown_worker,
        sockets_available,
    )

    if not sockets_available():
        return {"skipped": "loopback sockets unavailable"}
    graph, analysis = seed_bundle.graph, seed_bundle.analysis
    size = max(_sizes())

    def generate(ctx):
        return PGPBA(fraction=2.0, seed=11).generate(
            graph, analysis, size, context=ctx
        )

    with ClusterContext(
        n_nodes=4, executor_cores=12, partition_multiplier=2,
        executor="pool", local_workers=2,
    ) as ctx:
        result, pool_wall = measure_wall(lambda: generate(ctx))
        pool_digest = _graph_digest(result.graph)

    knob_vars = (
        "REPRO_MAX_INFLIGHT", "REPRO_WIRE_CODEC", "REPRO_FETCH_PREFETCH"
    )
    configs = [
        {"label": "stop-and-wait", "inflight": "1", "codec": "off"},
        {"label": "pipelined+zlib", "inflight": "2", "codec": "zlib"},
    ]
    records: list[dict] = []
    procs, addrs = [], []
    saved = {v: os.environ.get(v) for v in knob_vars}
    for _ in range(2):
        proc, addr = launch_worker()
        procs.append(proc)
        addrs.append(addr)
    try:
        for cfg in configs:
            os.environ["REPRO_MAX_INFLIGHT"] = cfg["inflight"]
            os.environ["REPRO_WIRE_CODEC"] = cfg["codec"]
            os.environ.pop("REPRO_FETCH_PREFETCH", None)
            with ClusterContext(
                n_nodes=4, executor_cores=12, partition_multiplier=2,
                executor="cluster", workers=addrs,
            ) as ctx:
                result, wall = measure_wall(lambda: generate(ctx))
                digest = _graph_digest(result.graph)
                transport = ctx.metrics.transport_breakdown()
            wire = int(transport["network_bytes"])
            raw = int(transport["network_raw_bytes"])
            records.append(
                {
                    "config": cfg["label"],
                    "max_inflight": int(cfg["inflight"]),
                    "wire_codec": cfg["codec"],
                    "target_edges": size,
                    "workers": 2,
                    "wall_seconds": round(wall, 4),
                    "cluster_over_pool": round(wall / pool_wall, 3)
                    if pool_wall
                    else None,
                    "network_bytes": wire,
                    "network_raw_bytes": raw,
                    "compression_ratio": round(raw / wire, 3)
                    if wire
                    else None,
                    "overlap_seconds": round(
                        transport["overlap_seconds"], 4
                    ),
                    "overlap_fraction": round(
                        transport["overlap_seconds"] / wall, 4
                    )
                    if wall
                    else None,
                    "round_trips": int(transport["round_trips"]),
                    "digest": digest,
                    "digest_matches_pool": digest == pool_digest,
                }
            )
    finally:
        for var, value in saved.items():
            if value is None:
                os.environ.pop(var, None)
            else:
                os.environ[var] = value
        for addr in addrs:
            shutdown_worker(addr)
        for proc in procs:
            try:
                proc.wait(timeout=10)
            except Exception:
                proc.kill()

    # Prefetch micro-bench: a chain of shuffle-named segments fetched in
    # the order a reduce sweep would, with one background connection
    # warming the predicted next segment.
    import tempfile
    import time as _time

    n_segments = 8
    prefetch = {"segments": n_segments}
    with tempfile.TemporaryDirectory(prefix="repro-bench-fetch-") as tmp:
        served = Path(tmp) / "served"
        local = Path(tmp) / "local"
        served.mkdir()
        local.mkdir()
        rng = np.random.default_rng(23)
        for p in range(n_segments):
            (served / f"es0-m0-d{p}.npz").write_bytes(
                rng.integers(0, 255, 256 * 1024, dtype=np.uint8).tobytes()
            )
        proc, addr = launch_worker(roots=(served,))
        fetcher = BlockFetcher([addr], prefetch=1)
        try:
            start = _time.perf_counter()
            for p in range(n_segments):
                assert fetcher(local / f"es0-m0-d{p}.npz") is True
                deadline = _time.monotonic() + 5.0
                while (
                    _time.monotonic() < deadline
                    and fetcher.prefetched <= p
                    and p < n_segments - 1
                ):
                    _time.sleep(0.005)
            prefetch.update(
                {
                    "wall_seconds": round(_time.perf_counter() - start, 4),
                    "prefetched": fetcher.prefetched,
                    "prefetch_hits": fetcher.prefetch_hits,
                    "hit_rate": round(
                        fetcher.prefetch_hits / n_segments, 3
                    ),
                }
            )
        finally:
            fetcher.close()
            shutdown_worker(addr)
            try:
                proc.wait(timeout=10)
            except Exception:
                proc.kill()

    return {
        "target_edges": size,
        "pool_wall_seconds": round(pool_wall, 4),
        "pool_digest": pool_digest,
        "records": records,
        "prefetch": prefetch,
        "all_match": all(r["digest_matches_pool"] for r in records),
    }


def run_engine_wallclock(seed_bundle) -> dict:
    backends = run_backend_sweep(seed_bundle)
    cluster = run_cluster_transport(seed_bundle)
    cluster_transport = run_cluster_pipeline(seed_bundle)
    shuffle = run_shuffle_memory()
    fusion = run_fusion_comparison()
    recovery = run_fault_recovery()
    spill = run_storage_spill()
    codec = run_storage_codec()
    out_of_core = run_out_of_core(seed_bundle)
    report = {
        "cpu_count": os.cpu_count(),
        "backends": backends,
        "cluster": cluster,
        "cluster_transport": cluster_transport,
        "distinct_shuffle_memory": shuffle,
        "stage_fusion": fusion,
        "fault_recovery": recovery,
        "storage_spill": spill,
        "storage_codec": codec,
        "out_of_core": out_of_core,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    JSON_PATH.write_text(json.dumps(report, indent=2) + "\n")
    headers = [
        "algorithm", "target", "backend", "wkrs", "wall_s", "speedup",
        "emit->disp", "sim_s", "digest",
    ]
    rows = [
        [
            r["algorithm"], r["target_edges"], r["backend"],
            r["workers"],
            f"{r['wall_seconds']:.3f}", f"{r['speedup_vs_serial']:.2f}",
            f"{r['tasks_emitted']}->{r['tasks_dispatched']}",
            f"{r['simulated_seconds']:.4f}", r["digest"],
        ]
        for r in backends
    ]
    table = format_table(headers, rows)
    print(f"\n== Engine wall-clock: executor backends ==\n{table}")
    if "records" in cluster:
        cluster_rows = [
            [
                r["algorithm"], r["workers"],
                f"{r['wall_seconds']:.3f}",
                f"{r['pool_wall_seconds']:.3f}",
                f"{r['cluster_over_pool']:.2f}x",
                f"{r['network_bytes'] / 2**20:.1f}",
                r["round_trips"],
                str(r["digest_matches_pool"]),
            ]
            for r in cluster["records"]
        ]
        print(
            "\n== Cluster transport: socket daemons vs local pool ==\n"
            + format_table(
                [
                    "algorithm", "daemons", "wall_s", "pool_s",
                    "vs pool", "net MiB", "round trips", "match",
                ],
                cluster_rows,
            )
        )
    if "records" in cluster_transport:
        pipe_rows = [
            [
                r["config"], r["max_inflight"], r["wire_codec"],
                f"{r['wall_seconds']:.3f}",
                f"{r['cluster_over_pool']:.2f}x",
                f"{r['network_raw_bytes'] / 2**20:.1f}",
                f"{r['network_bytes'] / 2**20:.1f}",
                f"{r['compression_ratio']:.2f}x"
                if r["compression_ratio"]
                else "-",
                f"{r['overlap_fraction']:.0%}"
                if r["overlap_fraction"] is not None
                else "-",
                str(r["digest_matches_pool"]),
            ]
            for r in cluster_transport["records"]
        ]
        pf = cluster_transport["prefetch"]
        print(
            "\n== Cluster transport: pipelining + wire compression "
            f"(PGPBA {cluster_transport['target_edges']:,} edges, "
            f"pool baseline {cluster_transport['pool_wall_seconds']:.3f} "
            "s) ==\n"
            + format_table(
                [
                    "config", "inflight", "codec", "wall_s", "vs pool",
                    "raw MiB", "wire MiB", "ratio", "overlap", "match",
                ],
                pipe_rows,
            )
            + "\nprefetch : "
            f"{pf['prefetch_hits']}/{pf['segments']} segments served "
            f"from the staging dict (hit rate {pf['hit_rate']:.0%}, "
            f"{pf['wall_seconds']:.3f} s)"
        )
    print(
        "\n== distinct() peak driver memory "
        f"({shuffle['rows']:,} rows) ==\n"
        f"collect  : {shuffle['collect_peak_bytes'] / 2**20:8.1f} MiB\n"
        f"exchange : {shuffle['exchange_peak_bytes'] / 2**20:8.1f} MiB "
        f"({shuffle['exchange_over_collect']:.2f}x)"
    )
    print(
        "\n== stage fusion vs eager "
        f"({fusion['rows']:,} rows, serial backend) ==\n"
        f"eager : {fusion['eager']['wall_seconds']:.3f} s  "
        f"{fusion['eager']['peak_tracemalloc_bytes'] / 2**20:8.1f} MiB\n"
        f"fused : {fusion['fused']['wall_seconds']:.3f} s  "
        f"{fusion['fused']['peak_tracemalloc_bytes'] / 2**20:8.1f} MiB\n"
        f"ratio : {fusion['wall_eager_over_fused']:.2f}x wall, "
        f"{fusion['mem_eager_over_fused']:.2f}x memory "
        f"(digests match: {fusion['digests_match']}, "
        f"stages match: {fusion['stage_structure_match']})"
    )
    faulted = recovery["faulted"]
    print(
        "\n== fault recovery "
        f"({recovery['rows']:,} rows, threads backend) ==\n"
        f"clean   : {recovery['clean']['wall_seconds']:.3f} s\n"
        f"faulted : {faulted['wall_seconds']:.3f} s "
        f"({recovery['wall_faulted_over_clean']:.2f}x), "
        f"{faulted['tasks_failed']} failed / "
        f"{faulted['tasks_retried']} retried, "
        f"{faulted['recovery_recompute_bytes'] / 2**20:.1f} MiB recomputed "
        f"(digests match: {recovery['digests_match']}, "
        f"stages match: {recovery['stage_structure_match']})"
    )
    budgeted = spill["budgeted"]
    print(
        "\n== storage spill: grow/distinct "
        f"({spill['rows']:,} rows, serial backend, "
        f"{spill['budget_bytes'] / 2**20:.0f} MiB budget) ==\n"
        f"unlimited : {spill['unlimited']['wall_seconds']:.3f} s  "
        f"{spill['unlimited']['peak_tracemalloc_bytes'] / 2**20:8.1f} MiB "
        f"peak, {spill['unlimited']['disk_high_water_bytes'] / 2**20:.1f} "
        "MiB disk\n"
        f"budgeted  : {budgeted['wall_seconds']:.3f} s  "
        f"{budgeted['peak_tracemalloc_bytes'] / 2**20:8.1f} MiB peak, "
        f"{budgeted['disk_high_water_bytes'] / 2**20:.1f} MiB disk "
        f"({budgeted['spill_count']} spills / "
        f"{budgeted['reload_count']} reloads)\n"
        f"ratio     : {spill['wall_budgeted_over_unlimited']:.2f}x wall, "
        f"{spill['mem_unlimited_over_budgeted']:.2f}x memory saved "
        f"(digests match: {spill['digests_match']}, "
        f"stages match: {spill['stage_structure_match']})"
    )
    print(
        "\n== storage codecs: grow/distinct "
        f"({codec['rows']:,} rows, serial backend, "
        f"{codec['budget_bytes'] / 2**20:.0f} MiB budget) =="
    )
    codec_rows = [
        [
            name,
            f"{c['wall_seconds']:.3f}",
            f"{c['disk_written_bytes'] / 2**20:.1f}",
            f"{c['compression_ratio']:.2f}x",
            f"{c['codec_encode_seconds']:.3f}",
            f"{c['codec_decode_seconds']:.3f}",
        ]
        for name, c in codec["codecs"].items()
    ]
    print(
        format_table(
            ["codec", "wall s", "disk MiB", "ratio", "enc s", "dec s"],
            codec_rows,
        )
    )
    print(
        f"digests match: {codec['digests_match']}, "
        f"stages match: {codec['stage_structure_match']}"
    )
    ooc = out_of_core
    print(
        "\n== out-of-core PGPBA structure growth "
        f"(zlib + extsort, {ooc['budget_bytes'] / 2**20:.0f} MiB "
        "budget, serial backend) =="
    )
    ooc_rows = [
        [
            f"{s['target_edges']:,}",
            f"{s['edges']:,}",
            f"{s['wall_seconds']:.1f}",
            f"{s['edges_per_second']:,}",
            f"{s['peak_tracemalloc_bytes'] / 2**20:.0f}",
            f"{s['disk_high_water_bytes'] / 2**20:.0f}",
            f"{s['compression_ratio']:.2f}x",
            str(s["under_budget"]),
        ]
        for s in ooc["scaling"]
    ]
    print(
        format_table(
            [
                "target", "edges", "wall s", "edges/s", "peak MiB",
                "disk MiB", "ratio", "under budget",
            ],
            ooc_rows,
        )
    )
    print(
        f"parity at {ooc['parity_target_edges']:,} edges across "
        f"{len(ooc['parity'])} backend x codec runs: "
        f"all match = {ooc['parity_all_match']}"
        f"\n\nwritten to {JSON_PATH}"
    )
    return report


# ----------------------------------------------------------------------
def test_engine_wallclock(benchmark, seed_bundle):
    report = run_engine_wallclock(seed_bundle)

    # Hard determinism requirement: every backend produced the
    # bit-identical graph for the same (algorithm, size, seed).
    by_case: dict[tuple, set] = {}
    for r in report["backends"]:
        by_case.setdefault(
            (r["algorithm"], r["target_edges"]), set()
        ).add(r["digest"])
        assert r["n_tasks"] > 0
    for case, digests in by_case.items():
        assert len(digests) == 1, f"backends disagree on {case}: {digests}"

    # Adaptive coalescing really thinned the physical dispatch stream
    # (the simulated n_tasks is untouched — checked via the digests and
    # stage structures above) and the pool's fork-once amortization
    # beats fork-per-task at the largest size.
    for r in report["backends"]:
        assert r["tasks_dispatched"] <= r["tasks_emitted"]
        assert r["tasks_emitted"] > 0
    largest = max(_sizes())
    pgpba_large = [
        r for r in report["backends"]
        if r["algorithm"] == "PGPBA" and r["target_edges"] == largest
    ]
    assert max(r["dispatch_ratio"] for r in pgpba_large) >= 4.0, (
        "expected >= 4x fewer physical dispatches at the largest PGPBA"
    )
    # Fork-once amortization must win wherever per-task overhead
    # dominates — the smallest size for both algorithms.  At the largest
    # PGPBA size the comparison is hardware-dependent on a starved host:
    # fork-per-task inherits the loop-carried edge partitions
    # copy-on-write while persistent workers must ship them through the
    # arena, so the strict wins are gated on real cores below.
    smallest = min(_sizes())
    for algo in ("PGPBA", "PGSK"):
        small = [
            r for r in report["backends"]
            if r["algorithm"] == algo and r["target_edges"] == smallest
        ]
        pool_small = min(
            (r["wall_seconds"] for r in small if r["backend"] == "pool"),
            default=None,
        )
        proc_small = min(
            (
                r["wall_seconds"] for r in small
                if r["backend"] == "processes"
            ),
            default=None,
        )
        if pool_small is not None and proc_small is not None:
            assert pool_small < proc_small, (
                f"persistent pool ({pool_small:.3f}s) should beat fork-"
                f"per-task processes ({proc_small:.3f}s) on {algo} at "
                f"{smallest:,} edges"
            )
    if (os.cpu_count() or 1) >= 4 and not os.environ.get(
        "REPRO_BENCH_SMOKE"
    ):
        pool_wall = min(
            r["wall_seconds"] for r in pgpba_large
            if r["backend"] == "pool"
        )
        proc_wall = min(
            r["wall_seconds"] for r in pgpba_large
            if r["backend"] == "processes"
        )
        serial_wall = next(
            r["wall_seconds"] for r in pgpba_large
            if r["backend"] == "serial"
        )
        assert pool_wall * 2.0 <= proc_wall, (
            f"expected >= 2x pool win over processes, got "
            f"{proc_wall / pool_wall:.2f}x"
        )
        assert pool_wall <= serial_wall, (
            f"pool ({pool_wall:.3f}s) slower than serial "
            f"({serial_wall:.3f}s) with real cores available"
        )

    # Cluster transport: byte-identical to the pool on every
    # (algorithm, daemon-count) pair, with real traffic on the wire.
    cluster = report["cluster"]
    if "records" in cluster:
        assert cluster["all_match"], (
            "cluster runs diverged from pool: "
            + ", ".join(
                f"{r['algorithm']}@{r['workers']}"
                for r in cluster["records"]
                if not r["digest_matches_pool"]
            )
        )
        for r in cluster["records"]:
            assert r["network_bytes"] > 0
            assert r["round_trips"] > 0

    # Pipelined transport: every configuration byte-identical to the
    # pool, compression really shrinking the wire, and — with real cores
    # and the full sizes — the defaults keeping the cluster within
    # 1.25x of the local pool while zlib at least halves the bytes.
    pipe = report["cluster_transport"]
    if "records" in pipe:
        assert pipe["all_match"], (
            "pipelined cluster runs diverged from pool: "
            + ", ".join(
                r["config"]
                for r in pipe["records"]
                if not r["digest_matches_pool"]
            )
        )
        by_config = {r["config"]: r for r in pipe["records"]}
        baseline = by_config["stop-and-wait"]
        shipped = by_config["pipelined+zlib"]
        assert baseline["network_bytes"] == baseline["network_raw_bytes"]
        assert shipped["network_bytes"] < shipped["network_raw_bytes"], (
            "zlib wire codec produced no compression"
        )
        assert shipped["overlap_seconds"] >= 0.0
        pf = pipe["prefetch"]
        assert pf["prefetch_hits"] > 0, "prefetch never hit"
        if not os.environ.get("REPRO_BENCH_SMOKE"):
            # Hardware-independent: at the full PGPBA size the edge
            # payloads compress far better than 2x (measured ~7x).
            assert shipped["compression_ratio"] >= 2.0, (
                f"zlib wire ratio {shipped['compression_ratio']:.2f}x, "
                "expected >= 2x"
            )
        if (os.cpu_count() or 1) >= 4 and not os.environ.get(
            "REPRO_BENCH_SMOKE"
        ):
            # With real cores the driver's compression and the daemons'
            # compute overlap; on a starved host they serialize, so the
            # wall target is gated like the other hardware asserts.
            assert shipped["cluster_over_pool"] <= 1.25, (
                f"pipelined cluster {shipped['cluster_over_pool']:.2f}x "
                "over pool, expected <= 1.25x"
            )

    # The exchange shuffle must beat the collect shuffle on driver memory.
    mem = report["distinct_shuffle_memory"]
    assert mem["exchange_peak_bytes"] < mem["collect_peak_bytes"]

    # Stage fusion: same dataset, same simulated stages, >= 1.3x better
    # wall clock or peak driver memory than the eager path.
    fusion = report["stage_fusion"]
    assert fusion["digests_match"], "fusion changed the dataset"
    assert fusion["stage_structure_match"], (
        "fusion changed the simulated stage structure"
    )
    best = max(
        fusion["wall_eager_over_fused"], fusion["mem_eager_over_fused"]
    )
    assert best >= 1.3, (
        f"expected >= 1.3x fusion win on wall or memory, got "
        f"{fusion['wall_eager_over_fused']:.2f}x wall / "
        f"{fusion['mem_eager_over_fused']:.2f}x memory"
    )

    # Fault recovery: identical dataset and simulated stages; the plan
    # really injected failures.
    recovery = report["fault_recovery"]
    assert recovery["digests_match"], "recovery changed the dataset"
    assert recovery["stage_structure_match"], (
        "recovery changed the simulated stage structure"
    )
    assert recovery["faulted"]["tasks_failed"] > 0
    assert recovery["clean"]["tasks_failed"] == 0

    # Storage spill: identical dataset and simulated stages under the
    # budget; the budgeted run keeps driver memory near the budget (plus
    # a transient-allocation allowance) with the overflow on disk, while
    # the unlimited run never touches disk.
    spill = report["storage_spill"]
    assert spill["digests_match"], "the memory budget changed the dataset"
    assert spill["stage_structure_match"], (
        "the memory budget changed the simulated stage structure"
    )
    budgeted, unlimited = spill["budgeted"], spill["unlimited"]
    assert budgeted["spill_count"] > 0
    assert budgeted["disk_high_water_bytes"] > 0
    assert unlimited["disk_high_water_bytes"] == 0
    assert (
        budgeted["peak_tracemalloc_bytes"]
        < unlimited["peak_tracemalloc_bytes"]
    ), "budgeted run should peak below the unlimited run"
    allowance = max(32 * 2**20, 8 * budgeted["max_partition_bytes"])
    ceiling = spill["budget_bytes"] + allowance
    assert budgeted["peak_tracemalloc_bytes"] <= ceiling, (
        f"budgeted peak {budgeted['peak_tracemalloc_bytes']:,} exceeds "
        f"budget + allowance {ceiling:,}"
    )

    # Storage codecs: pure physical knobs — identical dataset and
    # simulated stages for every codec; the compressing codecs really
    # shrank the on-disk footprint of the spilled integer columns.
    codec = report["storage_codec"]
    assert codec["digests_match"], "a block codec changed the dataset"
    assert codec["stage_structure_match"], (
        "a block codec changed the simulated stage structure"
    )
    for name in ("zlib", "lzma"):
        assert codec["codecs"][name]["compression_ratio"] >= 1.2, (
            f"{name} failed to compress the spilled columns: "
            f"{codec['codecs'][name]['compression_ratio']:.2f}x"
        )
        assert (
            codec["codecs"][name]["disk_written_bytes"]
            < codec["codecs"]["raw"]["disk_written_bytes"]
        )

    # Out of core: every scaling point stayed under the memory budget
    # (plus the transient allowance) while the grown edge set lived on
    # disk, and the budgeted backend x codec matrix reproduced the
    # unbudgeted in-memory reference bit for bit.
    ooc = report["out_of_core"]
    for point in ooc["scaling"]:
        assert point["under_budget"], (
            f"{point['target_edges']:,}-edge growth peaked at "
            f"{point['peak_tracemalloc_bytes']:,} bytes over the "
            f"{ooc['budget_bytes']:,}-byte budget"
        )
        assert point["edges"] >= point["target_edges"]
        assert point["disk_high_water_bytes"] > 0
    assert ooc["parity_all_match"], (
        "out-of-core runs diverged from the in-memory reference: "
        + ", ".join(
            f"{p['backend']}/{p['codec']}" for p in ooc["parity"]
            if not (p["digest_match"] and p["stage_structure_match"])
        )
    )

    # Parallel wall-clock win is only observable with real cores.
    if (os.cpu_count() or 1) >= 4 and not os.environ.get(
        "REPRO_BENCH_SMOKE"
    ):
        best = max(
            r["speedup_vs_serial"]
            for r in report["backends"]
            if r["backend"] != "serial"
            and r["algorithm"] == "PGPBA"
            and r["target_edges"] == max(_sizes())
        )
        assert best >= 2.0, f"expected >= 2x PGPBA speedup, got {best:.2f}x"

    benchmark.pedantic(
        lambda: run_shuffle_memory(), rounds=1, iterations=1
    )


if __name__ == "__main__":
    run_engine_wallclock(cached_seed())
