"""Accounting records for the simulated cluster.

Every partition task contributes a :class:`TaskRecord` (measured CPU cost
plus bytes produced); the scheduler folds records into per-node clocks and
memory meters, and :class:`SimulationMetrics` exposes the aggregates the
benchmarks read: simulated makespan, per-node peak memory, task counts.

The metrics also meter the driver-side ``persist()`` cache of the lazy
engine: every pinned RDD registers its resident bytes at
materialization and releases them on ``unpersist()``, so
``persisted_bytes`` / ``peak_persisted_bytes`` expose how much dataset
the generators keep live across loop iterations.

Fault recovery is metered separately from the simulated series: the
recovery layer (:func:`repro.engine.executor.run_with_recovery`) reports
``tasks_failed`` / ``tasks_retried`` / ``tasks_speculated`` /
``recovery_recompute_bytes`` per batch via :meth:`SimulationMetrics.
record_recovery`.  These counters never feed the scheduler, so the
Fig. 8-12 stage records and makespans are byte-identical whether a run
recovered from faults or saw none (asserted in tests).

Physical dispatch is metered the same way — outside the simulated
series: ``tasks_emitted`` counts logical per-partition tasks the planner
produced, ``tasks_dispatched`` the physical executor tasks they were
coalesced into, ``tasks_inlined`` the empty-partition chains run in the
driver instead of scheduled; ``transport_breakdown()`` exposes the
executor's wall-clock overhead profile (submit/serialize/ipc/compute).
``n_tasks`` remains the *simulated* task count and is identical under
any coalescing setting.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["TaskRecord", "SimulationMetrics"]


@dataclass(frozen=True)
class TaskRecord:
    """One executed partition task."""

    stage: str
    partition: int
    node: int
    cpu_seconds: float
    bytes_out: int


@dataclass
class SimulationMetrics:
    """Mutable aggregate the context updates stage by stage."""

    n_nodes: int
    simulated_seconds: float = 0.0
    platform_overhead_seconds: float = 0.0
    tasks: list[TaskRecord] = field(default_factory=list)
    node_busy_seconds: np.ndarray = None
    node_resident_bytes: np.ndarray = None
    node_peak_bytes: np.ndarray = None
    persisted_rdd_bytes: dict = field(default_factory=dict)
    peak_persisted_bytes: int = 0
    tasks_failed: int = 0
    tasks_retried: int = 0
    tasks_speculated: int = 0
    recovery_recompute_bytes: int = 0
    # Physical dispatch accounting (wall-clock side of the two clocks):
    # logical tasks emitted by the planner vs. executor tasks actually
    # dispatched after coalescing, plus empty chains run in the driver.
    tasks_emitted: int = 0
    tasks_dispatched: int = 0
    tasks_inlined: int = 0
    # Live view of the owning context's BlockStore accounting (attached
    # by the context, shared across reset_metrics): real driver-process
    # bytes, not simulated cluster bytes.
    storage: object = None
    # Live view of the executor's TransportProfile (attached by the
    # context, which zeroes it on reset_metrics so the breakdown spans
    # the same window as every other counter here).
    transport: object = None

    def __post_init__(self) -> None:
        if self.node_busy_seconds is None:
            self.node_busy_seconds = np.zeros(self.n_nodes)
        if self.node_resident_bytes is None:
            self.node_resident_bytes = np.zeros(self.n_nodes, dtype=np.int64)
        if self.node_peak_bytes is None:
            self.node_peak_bytes = np.zeros(self.n_nodes, dtype=np.int64)

    # ------------------------------------------------------------------
    def record_stage(
        self,
        records: list[TaskRecord],
        stage_makespan: float,
        overhead: float,
    ) -> None:
        self.tasks.extend(records)
        self.simulated_seconds += stage_makespan + overhead
        self.platform_overhead_seconds += overhead
        for r in records:
            self.node_busy_seconds[r.node] += r.cpu_seconds

    def settle_memory(self, per_node_bytes: np.ndarray) -> None:
        """Set the resident dataset bytes per node after a stage."""
        per_node = np.asarray(per_node_bytes, dtype=np.int64)
        if per_node.shape != (self.n_nodes,):
            raise ValueError(
                f"expected {self.n_nodes} per-node byte counts, got "
                f"{per_node.shape}"
            )
        self.node_resident_bytes = per_node
        self.node_peak_bytes = np.maximum(self.node_peak_bytes, per_node)

    # ------------------------------------------------------------------
    def record_recovery(self, stats) -> None:
        """Fold one batch's :class:`~repro.engine.executor.RecoveryStats`
        into the recovery counters.  Recovery is wall-clock-only: these
        numbers never reach the scheduler or the task records, so the
        simulated Fig. 8-12 series are unaffected by faults."""
        self.tasks_failed += stats.tasks_failed
        self.tasks_retried += stats.tasks_retried
        self.tasks_speculated += stats.tasks_speculated
        self.recovery_recompute_bytes += stats.recompute_bytes

    # ------------------------------------------------------------------
    def register_persist(self, key: int, nbytes: int) -> None:
        """Account one pinned RDD's resident bytes (keyed by identity)."""
        self.persisted_rdd_bytes[key] = int(nbytes)
        self.peak_persisted_bytes = max(
            self.peak_persisted_bytes, self.persisted_bytes
        )

    def release_persist(self, key: int) -> None:
        """Drop a pinned RDD's accounting (idempotent)."""
        self.persisted_rdd_bytes.pop(key, None)

    @property
    def persisted_bytes(self) -> int:
        """Bytes currently pinned by ``persist()`` across all RDDs."""
        return int(sum(self.persisted_rdd_bytes.values()))

    # ------------------------------------------------------------------
    def attach_storage(self, stats) -> None:
        """Bind the context's live :class:`~repro.engine.storage.
        StorageStats` so block-tier accounting surfaces here."""
        self.storage = stats

    def attach_transport(self, profile) -> None:
        """Bind the executor's live :class:`~repro.engine.executor.
        TransportProfile` so per-task overhead surfaces here."""
        self.transport = profile

    def transport_breakdown(self) -> dict:
        """The executor's wall-clock overhead profile as a plain dict
        (zeros when no executor transport is attached)."""
        if self.transport is None:
            return {
                "submit_seconds": 0.0,
                "serialize_seconds": 0.0,
                "ipc_wait_seconds": 0.0,
                "compute_seconds": 0.0,
                "payload_bytes": 0,
                "network_bytes": 0,
                "network_raw_bytes": 0,
                "round_trips": 0,
                "overlap_seconds": 0.0,
            }
        return self.transport.as_dict()

    @property
    def dispatch_ratio(self) -> float:
        """Logical-to-physical task ratio (>= 1 under coalescing)."""
        if self.tasks_dispatched == 0:
            return 1.0
        return self.tasks_emitted / self.tasks_dispatched

    @property
    def storage_memory_bytes(self) -> int:
        """Bytes of block data currently resident in driver memory."""
        return 0 if self.storage is None else int(self.storage.memory_bytes)

    @property
    def storage_disk_bytes(self) -> int:
        """Bytes of block data currently spilled on disk."""
        return 0 if self.storage is None else int(self.storage.disk_bytes)

    @property
    def storage_spill_count(self) -> int:
        """Blocks (and shuffle segments) written to disk so far."""
        return 0 if self.storage is None else int(self.storage.spill_count)

    @property
    def storage_reload_count(self) -> int:
        """Spilled blocks read back from disk so far."""
        return 0 if self.storage is None else int(self.storage.reload_count)

    @property
    def storage_peak_memory_bytes(self) -> int:
        return (
            0 if self.storage is None
            else int(self.storage.peak_memory_bytes)
        )

    @property
    def storage_disk_high_water_bytes(self) -> int:
        return (
            0 if self.storage is None
            else int(self.storage.disk_high_water_bytes)
        )

    @property
    def storage_disk_logical_bytes(self) -> int:
        """Pre-codec array bytes the current on-disk blocks represent."""
        return (
            0 if self.storage is None
            else int(self.storage.disk_logical_bytes)
        )

    @property
    def storage_compression_ratio(self) -> float:
        """Logical/actual byte ratio over every block the codec wrote."""
        return (
            1.0 if self.storage is None
            else float(self.storage.compression_ratio())
        )

    @property
    def storage_codec_seconds(self) -> float:
        """Driver-observed encode + decode time inside the block codec."""
        return (
            0.0 if self.storage is None
            else float(self.storage.codec_seconds)
        )

    # ------------------------------------------------------------------
    @property
    def n_tasks(self) -> int:
        return len(self.tasks)

    @property
    def peak_node_memory_bytes(self) -> int:
        return int(self.node_peak_bytes.max(initial=0))

    @property
    def mean_node_memory_bytes(self) -> float:
        return float(self.node_peak_bytes.mean()) if self.n_nodes else 0.0

    def utilisation(self) -> float:
        """Fraction of node-seconds spent computing (vs idle waves).

        Clamped to 1.0: busy seconds count *effective* task seconds,
        several of which run concurrently on one node's cores, so the
        raw ratio can nose over 1 when task costs dwarf the scheduling
        overheads.
        """
        if self.simulated_seconds <= 0:
            return 0.0
        capacity = self.simulated_seconds * self.n_nodes
        return min(1.0, float(self.node_busy_seconds.sum() / capacity))
