"""Engine wall-clock benchmark: executor backends + shuffle memory.

Unlike the ``bench_fig*`` modules, which read the *simulated* cluster
clock, this bench times *real* elapsed seconds — the thing the pluggable
executor layer (serial / threads / processes) accelerates — and tracks
it from PR to PR via ``benchmarks/results/BENCH_engine.json``:

* PGPBA and PGSK generation wall time per backend at 10^5-10^6 edges,
  with the speedup over ``serial`` and a digest of the output graph
  proving every backend produced the bit-identical dataset;
* peak driver memory of ``distinct()`` under the hash-exchange shuffle
  versus the legacy collect-everything shuffle (tracemalloc peaks on the
  serial backend, so only the shuffle structure differs).

``REPRO_BENCH_SMOKE=1`` shrinks the sweep to a CI-sized smoke run
(~30 s); ``REPRO_BENCH_EDGES`` overrides the size list directly, e.g.
``REPRO_BENCH_EDGES=100000,1000000``.

Run directly (``PYTHONPATH=src python benchmarks/bench_engine_wallclock.py``)
or via pytest like the figure benches.
"""

from __future__ import annotations

import hashlib
import json
import os
import tracemalloc
from pathlib import Path

import numpy as np

from repro.bench import cached_seed, format_table, measure_wall
from repro.core import PGPBA, PGSK
from repro.engine import ClusterContext, available_backends

RESULTS_DIR = Path(__file__).parent / "results"
JSON_PATH = RESULTS_DIR / "BENCH_engine.json"

BACKENDS = tuple(available_backends())  # ("serial", "threads", "processes")


def _sizes() -> list[int]:
    override = os.environ.get("REPRO_BENCH_EDGES")
    if override:
        return [int(s) for s in override.split(",") if s.strip()]
    if os.environ.get("REPRO_BENCH_SMOKE"):
        return [50_000]
    return [100_000, 1_000_000]


def _shuffle_rows() -> int:
    if os.environ.get("REPRO_BENCH_SMOKE"):
        return 200_000
    return 1_000_000


def _context(backend: str) -> ClusterContext:
    # A small simulated cluster whose 32 real partitions give every local
    # worker something to chew on; the simulated shapes are identical
    # across backends, only the wall clock differs.  Pool backends get at
    # least 2 workers even on a 1-CPU host so the parallel dispatch path
    # (thread pool / fork + shared memory) is genuinely exercised — there
    # a speedup near 1.0 is the expected outcome, not a failure.
    workers = os.cpu_count() or 1
    if backend != "serial":
        workers = max(2, workers)
    return ClusterContext(
        n_nodes=4, executor_cores=12, partition_multiplier=2,
        executor=backend, local_workers=workers,
    )


def _graph_digest(graph) -> str:
    """Order-sensitive digest of the full (src, dst, properties) dataset."""
    h = hashlib.sha256()
    h.update(np.ascontiguousarray(graph.src).tobytes())
    h.update(np.ascontiguousarray(graph.dst).tobytes())
    for name in sorted(graph.edge_properties):
        h.update(name.encode())
        h.update(np.ascontiguousarray(graph.edge_properties[name]).tobytes())
    return h.hexdigest()[:16]


# ----------------------------------------------------------------------
def run_backend_sweep(seed_bundle) -> list[dict]:
    """Wall-clock generation per (algorithm, size, backend)."""
    graph, analysis = seed_bundle.graph, seed_bundle.analysis
    pgsk = PGSK(seed=11, kronfit_iterations=8, kronfit_swaps=30)
    initiator = pgsk.fit_initiator(graph)
    records: list[dict] = []
    for size in _sizes():
        for algo in ("PGPBA", "PGSK"):
            serial_wall = None
            for backend in BACKENDS:
                with _context(backend) as ctx:
                    if algo == "PGPBA":
                        result, wall = measure_wall(
                            lambda: PGPBA(fraction=2.0, seed=11).generate(
                                graph, analysis, size, context=ctx
                            )
                        )
                    else:
                        result, wall = measure_wall(
                            lambda: pgsk.generate(
                                graph, analysis, size,
                                context=ctx, initiator=initiator,
                            )
                        )
                if backend == "serial":
                    serial_wall = wall
                records.append(
                    {
                        "algorithm": algo,
                        "target_edges": size,
                        "backend": backend,
                        "workers": ctx.executor.workers,
                        "edges": int(result.graph.n_edges),
                        "wall_seconds": round(wall, 4),
                        "speedup_vs_serial": round(serial_wall / wall, 3),
                        "simulated_seconds": round(result.total_seconds, 4),
                        "n_tasks": ctx.metrics.n_tasks,
                        "digest": _graph_digest(result.graph),
                    }
                )
    return records


def run_shuffle_memory() -> dict:
    """Peak driver memory of distinct(): hash exchange vs legacy collect."""
    rows = _shuffle_rows()
    peaks: dict[str, int] = {}
    for shuffle in ("collect", "exchange"):
        ctx = ClusterContext(
            n_nodes=4, executor_cores=12, partition_multiplier=2,
            executor="serial",
        )
        rng = np.random.default_rng(5)
        src = rng.integers(0, rows // 2, size=rows, dtype=np.int64)
        dst = rng.integers(0, rows // 2, size=rows, dtype=np.int64)
        rdd = ctx.parallelize([src, dst])
        tracemalloc.start()
        tracemalloc.reset_peak()
        rdd.distinct(key_columns=(0, 1), shuffle=shuffle)
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        peaks[shuffle] = int(peak)
    return {
        "rows": rows,
        "collect_peak_bytes": peaks["collect"],
        "exchange_peak_bytes": peaks["exchange"],
        "exchange_over_collect": round(
            peaks["exchange"] / max(1, peaks["collect"]), 3
        ),
    }


def run_engine_wallclock(seed_bundle) -> dict:
    backends = run_backend_sweep(seed_bundle)
    shuffle = run_shuffle_memory()
    report = {
        "cpu_count": os.cpu_count(),
        "backends": backends,
        "distinct_shuffle_memory": shuffle,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    JSON_PATH.write_text(json.dumps(report, indent=2) + "\n")
    headers = [
        "algorithm", "target", "backend", "wall_s", "speedup",
        "sim_s", "digest",
    ]
    rows = [
        [
            r["algorithm"], r["target_edges"], r["backend"],
            f"{r['wall_seconds']:.3f}", f"{r['speedup_vs_serial']:.2f}",
            f"{r['simulated_seconds']:.4f}", r["digest"],
        ]
        for r in backends
    ]
    table = format_table(headers, rows)
    print(f"\n== Engine wall-clock: executor backends ==\n{table}")
    print(
        "\n== distinct() peak driver memory "
        f"({shuffle['rows']:,} rows) ==\n"
        f"collect  : {shuffle['collect_peak_bytes'] / 2**20:8.1f} MiB\n"
        f"exchange : {shuffle['exchange_peak_bytes'] / 2**20:8.1f} MiB "
        f"({shuffle['exchange_over_collect']:.2f}x)\n"
        f"\nwritten to {JSON_PATH}"
    )
    return report


# ----------------------------------------------------------------------
def test_engine_wallclock(benchmark, seed_bundle):
    report = run_engine_wallclock(seed_bundle)

    # Hard determinism requirement: every backend produced the
    # bit-identical graph for the same (algorithm, size, seed).
    by_case: dict[tuple, set] = {}
    for r in report["backends"]:
        by_case.setdefault(
            (r["algorithm"], r["target_edges"]), set()
        ).add(r["digest"])
        assert r["n_tasks"] > 0
    for case, digests in by_case.items():
        assert len(digests) == 1, f"backends disagree on {case}: {digests}"

    # The exchange shuffle must beat the collect shuffle on driver memory.
    mem = report["distinct_shuffle_memory"]
    assert mem["exchange_peak_bytes"] < mem["collect_peak_bytes"]

    # Parallel wall-clock win is only observable with real cores.
    if (os.cpu_count() or 1) >= 4 and not os.environ.get(
        "REPRO_BENCH_SMOKE"
    ):
        best = max(
            r["speedup_vs_serial"]
            for r in report["backends"]
            if r["backend"] != "serial"
            and r["algorithm"] == "PGPBA"
            and r["target_edges"] == max(_sizes())
        )
        assert best >= 2.0, f"expected >= 2x PGPBA speedup, got {best:.2f}x"

    benchmark.pedantic(
        lambda: run_shuffle_memory(), rounds=1, iterations=1
    )


if __name__ == "__main__":
    run_engine_wallclock(cached_seed())
