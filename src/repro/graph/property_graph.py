"""Columnar directed property multigraph.

Storage layout
--------------
Vertices are dense integers ``0 .. n_vertices-1``.  Edges are two parallel
int64 arrays ``src`` and ``dst``; parallel edges are simply repeated rows,
which is exactly the multi-set semantics the paper's ``E`` requires.
Vertex and edge attributes are name → array maps whose arrays align with the
vertex / edge index.  All analytics reduce to vectorised operations on these
arrays (``np.bincount`` for degrees, one sparse mat-vec per PageRank sweep).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Mapping

import numpy as np

__all__ = ["PropertyGraph"]


@dataclass
class PropertyGraph:
    """A directed multigraph with columnar vertex and edge properties.

    Parameters
    ----------
    n_vertices:
        Number of vertices; vertex ids are ``0 .. n_vertices-1``.
    src, dst:
        Parallel int64 arrays of edge endpoints (may contain repeats —
        parallel edges — and self loops).
    vertex_properties, edge_properties:
        Attribute name → aligned array.
    """

    n_vertices: int
    src: np.ndarray
    dst: np.ndarray
    vertex_properties: dict[str, np.ndarray] = field(default_factory=dict)
    edge_properties: dict[str, np.ndarray] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.src = np.ascontiguousarray(self.src, dtype=np.int64)
        self.dst = np.ascontiguousarray(self.dst, dtype=np.int64)
        if self.src.shape != self.dst.shape or self.src.ndim != 1:
            raise ValueError(
                f"src {self.src.shape} and dst {self.dst.shape} must be "
                "matching 1-D arrays"
            )
        if self.n_vertices < 0:
            raise ValueError("n_vertices must be non-negative")
        if self.src.size:
            top = max(int(self.src.max()), int(self.dst.max()))
            if top >= self.n_vertices:
                raise ValueError(
                    f"edge endpoint {top} out of range for "
                    f"{self.n_vertices} vertices"
                )
            low = min(int(self.src.min()), int(self.dst.min()))
            if low < 0:
                raise ValueError("edge endpoints must be non-negative")
        for name, arr in self.vertex_properties.items():
            if len(arr) != self.n_vertices:
                raise ValueError(
                    f"vertex property {name!r} has {len(arr)} entries for "
                    f"{self.n_vertices} vertices"
                )
        for name, arr in self.edge_properties.items():
            if len(arr) != self.src.size:
                raise ValueError(
                    f"edge property {name!r} has {len(arr)} entries for "
                    f"{self.src.size} edges"
                )

    # ------------------------------------------------------------------
    # basic shape
    # ------------------------------------------------------------------
    @property
    def n_edges(self) -> int:
        return int(self.src.size)

    def __len__(self) -> int:
        return self.n_vertices

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PropertyGraph(|V|={self.n_vertices}, |E|={self.n_edges}, "
            f"edge_props={sorted(self.edge_properties)})"
        )

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def empty(cls) -> "PropertyGraph":
        return cls(0, np.empty(0, np.int64), np.empty(0, np.int64))

    @classmethod
    def from_edge_list(
        cls,
        src,
        dst,
        *,
        n_vertices: int | None = None,
        edge_properties: Mapping[str, np.ndarray] | None = None,
    ) -> "PropertyGraph":
        """Build from endpoint arrays, inferring the vertex count."""
        src = np.ascontiguousarray(src, dtype=np.int64)
        dst = np.ascontiguousarray(dst, dtype=np.int64)
        if n_vertices is None:
            n_vertices = (
                int(max(src.max(initial=-1), dst.max(initial=-1))) + 1
            )
        return cls(
            n_vertices=n_vertices,
            src=src,
            dst=dst,
            edge_properties=dict(edge_properties or {}),
        )

    # ------------------------------------------------------------------
    # degrees
    # ------------------------------------------------------------------
    def out_degrees(self) -> np.ndarray:
        """Out-degree of every vertex, counting parallel edges."""
        return np.bincount(self.src, minlength=self.n_vertices)

    def in_degrees(self) -> np.ndarray:
        """In-degree of every vertex, counting parallel edges."""
        return np.bincount(self.dst, minlength=self.n_vertices)

    def degrees(self) -> np.ndarray:
        """Total degree (in + out) of every vertex."""
        return self.out_degrees() + self.in_degrees()

    # ------------------------------------------------------------------
    # structure transforms
    # ------------------------------------------------------------------
    def distinct_edge_pairs(self) -> tuple[np.ndarray, np.ndarray]:
        """The simple-graph projection: unique (src, dst) pairs.

        This is the ``E -> E^p`` step of PGSK (Fig. 3 lines 1-5): collapse
        the multi-set to a set via hashing.  Implemented by packing both
        endpoints into one int64 key when the graph is small enough,
        otherwise via lexicographic row de-duplication.
        """
        if self.n_edges == 0:
            return self.src.copy(), self.dst.copy()
        if self.n_vertices < (1 << 31):
            key = self.src * np.int64(self.n_vertices) + self.dst
            uniq = np.unique(key)
            return uniq // self.n_vertices, uniq % self.n_vertices
        pairs = np.stack([self.src, self.dst], axis=1)
        uniq = np.unique(pairs, axis=0)
        return uniq[:, 0].copy(), uniq[:, 1].copy()

    def edge_multiplicities(self) -> np.ndarray:
        """Multiplicity of every distinct (src, dst) pair.

        PGSK samples this distribution when re-expanding the simple graph
        back into a multigraph (Fig. 3 lines 9-12).
        """
        if self.n_edges == 0:
            return np.empty(0, np.int64)
        if self.n_vertices < (1 << 31):
            key = self.src * np.int64(self.n_vertices) + self.dst
            _, counts = np.unique(key, return_counts=True)
            return counts
        pairs = np.stack([self.src, self.dst], axis=1)
        _, counts = np.unique(pairs, axis=0, return_counts=True)
        return counts

    def simple_graph(self) -> "PropertyGraph":
        """Return the simple-graph projection (no attributes, no repeats)."""
        s, d = self.distinct_edge_pairs()
        return PropertyGraph(self.n_vertices, s, d)

    def reversed(self) -> "PropertyGraph":
        """Edge-reversed view (copies endpoint arrays, shares attributes)."""
        return PropertyGraph(
            self.n_vertices,
            self.dst.copy(),
            self.src.copy(),
            vertex_properties=dict(self.vertex_properties),
            edge_properties=dict(self.edge_properties),
        )

    def select_edges(self, mask_or_index: np.ndarray) -> "PropertyGraph":
        """Sub-multigraph keeping the selected edges and all vertices."""
        sel = np.asarray(mask_or_index)
        return PropertyGraph(
            self.n_vertices,
            self.src[sel],
            self.dst[sel],
            vertex_properties=dict(self.vertex_properties),
            edge_properties={
                k: np.asarray(v)[sel] for k, v in self.edge_properties.items()
            },
        )

    def sample_edges(
        self, fraction: float, rng: np.random.Generator
    ) -> np.ndarray:
        """Uniformly sample edge indices; the PGPBA preferential-attachment
        first stage (Fig. 2 line 3).  Returns ceil(fraction * |E|) indices
        drawn without replacement when possible.
        """
        if not 0.0 < fraction:
            raise ValueError("fraction must be positive")
        k = max(1, int(np.ceil(fraction * self.n_edges)))
        if k >= self.n_edges:
            # Sampling more edges than exist: draw with replacement.
            return rng.integers(0, self.n_edges, size=k)
        return rng.choice(self.n_edges, size=k, replace=False)

    # ------------------------------------------------------------------
    # adjacency export
    # ------------------------------------------------------------------
    def snapshot(self):
        """The memoized query-serving snapshot of this graph.

        Builds a :class:`repro.serve.snapshot.GraphSnapshot` (CSR
        adjacency, degree arrays, attribute indexes) on first call and
        caches it on the instance, so a workload of many queries pays
        the O(E) index construction exactly once per graph.  The graph
        is treated as immutable once snapshotted — every structure
        transform here returns a new instance, which naturally gets a
        fresh snapshot (and a fresh cache epoch) of its own.
        """
        snap = self.__dict__.get("_snapshot")
        if snap is None:
            from repro.serve.snapshot import GraphSnapshot

            snap = GraphSnapshot.build(self)
            self.__dict__["_snapshot"] = snap
        return snap

    def to_sparse_adjacency(self, *, weighted: bool = True):
        """CSR adjacency matrix (multiplicities as weights when weighted)."""
        from scipy import sparse

        data = np.ones(self.n_edges, dtype=np.float64)
        mat = sparse.coo_matrix(
            (data, (self.src, self.dst)),
            shape=(self.n_vertices, self.n_vertices),
        ).tocsr()
        if not weighted:
            mat.data[:] = 1.0
        return mat

    def to_networkx(self, *, max_edges: int = 5_000_000):
        """Convert to a ``networkx.MultiDiGraph`` (for small graphs only)."""
        import networkx as nx

        if self.n_edges > max_edges:
            raise ValueError(
                f"refusing to materialise {self.n_edges} edges as Python "
                f"objects (limit {max_edges})"
            )
        g = nx.MultiDiGraph()
        g.add_nodes_from(range(self.n_vertices))
        prop_names = list(self.edge_properties)
        if prop_names:
            cols = [self.edge_properties[p] for p in prop_names]
            for i in range(self.n_edges):
                attrs = {p: cols[j][i] for j, p in enumerate(prop_names)}
                g.add_edge(int(self.src[i]), int(self.dst[i]), **attrs)
        else:
            g.add_edges_from(zip(self.src.tolist(), self.dst.tolist()))
        return g

    @classmethod
    def from_networkx(cls, g) -> "PropertyGraph":
        """Build from any networkx directed graph with integer nodes."""
        nodes = sorted(g.nodes())
        relabel = {n: i for i, n in enumerate(nodes)}
        src, dst = [], []
        for u, v in g.edges():
            src.append(relabel[u])
            dst.append(relabel[v])
        return cls(
            n_vertices=len(nodes),
            src=np.asarray(src, dtype=np.int64),
            dst=np.asarray(dst, dtype=np.int64),
        )

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def save_npz(self, path) -> None:
        """Serialise to a compressed .npz archive."""
        payload: dict[str, np.ndarray] = {
            "n_vertices": np.asarray(self.n_vertices, dtype=np.int64),
            "src": self.src,
            "dst": self.dst,
        }
        for name, arr in self.vertex_properties.items():
            payload[f"vp__{name}"] = np.asarray(arr)
        for name, arr in self.edge_properties.items():
            payload[f"ep__{name}"] = np.asarray(arr)
        np.savez_compressed(path, **payload)

    @classmethod
    def load_npz(cls, path) -> "PropertyGraph":
        """Inverse of :meth:`save_npz`."""
        with np.load(path, allow_pickle=False) as data:
            vp = {
                k[4:]: data[k] for k in data.files if k.startswith("vp__")
            }
            ep = {
                k[4:]: data[k] for k in data.files if k.startswith("ep__")
            }
            return cls(
                n_vertices=int(data["n_vertices"]),
                src=data["src"],
                dst=data["dst"],
                vertex_properties=vp,
                edge_properties=ep,
            )

    # ------------------------------------------------------------------
    # iteration (small-graph convenience; analytics never use this)
    # ------------------------------------------------------------------
    def iter_edges(self) -> Iterator[tuple[int, int, dict]]:
        """Yield ``(src, dst, properties)`` per edge.  O(|E|) Python loop —
        intended for tests and small exports, not for analytics."""
        names = list(self.edge_properties)
        cols = [self.edge_properties[n] for n in names]
        for i in range(self.n_edges):
            props = {n: cols[j][i] for j, n in enumerate(names)}
            yield int(self.src[i]), int(self.dst[i]), props

    def memory_bytes(self) -> int:
        """Resident bytes of all columnar arrays (used by Fig. 11 meter)."""
        total = self.src.nbytes + self.dst.nbytes
        for arr in self.vertex_properties.values():
            total += np.asarray(arr).nbytes
        for arr in self.edge_properties.values():
            total += np.asarray(arr).nbytes
        return total
