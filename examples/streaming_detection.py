#!/usr/bin/env python3
"""Online (streaming) intrusion detection — the paper's §VI outlook.

Runs the full :mod:`repro.stream` micro-batch pipeline: a synthetic
trace source (background enterprise traffic + two timed attacks) feeds
windowed flow assembly, the live property graph, and the sliding-window
online detector, all on threads connected by bounded queues.  The report
shows per-stage throughput, backpressure (queue stalls), end-to-end
window latency, and the paper's headline metric: time-to-detection for
each injected attack.

Knobs (flag → env → default):  --window / REPRO_STREAM_WINDOW,
--queue-capacity / REPRO_STREAM_QUEUE, --lateness / REPRO_STREAM_LATENESS.
Try ``--sink-delay 0.05 --queue-capacity 2`` to watch backpressure
propagate from a deliberately slow sink back to the source.

Run:  python examples/streaming_detection.py
"""

import argparse

from repro.detect import DetectionThresholds, OnlineDetector
from repro.netflow import FlowTable, assemble_flows
from repro.core.pipeline import packets_from
from repro.stream import StreamPipeline, TraceSource
from repro.trace import attacks
from repro.trace.hosts import ipv4
from repro.trace.synthesizer import TraceSynthesizer

WINDOW = 5.0


def parse_args() -> argparse.Namespace:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--window", default=None,
                    help="micro-batch window seconds (REPRO_STREAM_WINDOW)")
    ap.add_argument("--queue-capacity", default=None,
                    help="bounded queue capacity (REPRO_STREAM_QUEUE)")
    ap.add_argument("--lateness", default=None,
                    help="allowed lateness seconds or 'auto' "
                         "(REPRO_STREAM_LATENESS)")
    ap.add_argument("--sink-delay", type=float, default=0.0,
                    help="artificial per-window sink delay (forces "
                         "backpressure)")
    return ap.parse_args()


def main() -> None:
    args = parse_args()

    print("synthesizing clean traffic + two timed attacks ...")
    synth = TraceSynthesizer(session_rate=40.0, seed=17)
    flood = attacks.syn_flood(
        attacker_ip=ipv4(203, 0, 113, 5),
        victim_ip=ipv4(10, 2, 0, 2),
        start_time=1_000_008.0,
        duration=4.0,
    )
    scan = attacks.host_scan(
        attacker_ip=ipv4(203, 0, 113, 6),
        victim_ip=ipv4(10, 2, 0, 3),
        start_time=1_000_018.0,
        duration=6.0,
    )
    source = TraceSource(
        synthesizer=synth, duration=30.0, attacks=(flood, scan)
    )

    print("calibrating thresholds on a clean background run ...")
    clean = TraceSynthesizer(session_rate=40.0, seed=17).generate(
        30.0, start_time=1_000_000.0
    )
    clean_table = FlowTable.from_records(
        list(assemble_flows(packets_from(clean)))
    )
    thresholds = DetectionThresholds.fit_normal(
        {k: clean_table[k] for k in FlowTable.COLUMN_NAMES},
        window_seconds=WINDOW,
    )
    detector = OnlineDetector(
        thresholds, window_seconds=WINDOW, cooldown_seconds=30.0
    )

    pipeline = StreamPipeline(
        source,
        detector=detector,
        window_seconds=args.window,
        lateness=args.lateness,
        queue_capacity=args.queue_capacity,
        sink_delay_seconds=args.sink_delay,
    )
    print("\nstreaming ...")
    result = pipeline.run()

    print("\nalarms (stream time):")
    for alert in result.detections:
        det = alert.detection
        print(
            f"  t=+{alert.time - source.start_time:5.1f}s  "
            f"{det.kind:<14} ({det.direction}) ip={det.ip}"
        )
    if not result.detections:
        print("  (none)")

    print("\ntime-to-detection:")
    for lat in result.latencies:
        if lat.detected:
            print(
                f"  {lat.kind:<14} detected as {lat.detected_kind} "
                f"{lat.seconds_to_detection:.1f}s after onset"
            )
        else:
            print(f"  {lat.kind:<14} MISSED")

    print("\npipeline stats:")
    print(result.stats.summary())


if __name__ == "__main__":
    main()
