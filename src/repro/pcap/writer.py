"""Streaming pcap writer (native little-endian, microsecond timestamps)."""

from __future__ import annotations

from pathlib import Path
from typing import Iterable

from repro.pcap.format import PcapGlobalHeader, PcapRecordHeader

__all__ = ["PcapWriter", "write_pcap"]


class PcapWriter:
    """Context-manager that appends timestamped packets to a capture file.

    Timestamps must be non-decreasing; real captures are time-ordered and
    the flow assembler relies on it for timeout-based flow expiry.
    """

    def __init__(self, path, *, snaplen: int = 65535) -> None:
        self._path = Path(path)
        self._snaplen = snaplen
        self._fh = None
        self._last_ts = float("-inf")
        self.packets_written = 0

    def __enter__(self) -> "PcapWriter":
        self._fh = self._path.open("wb")
        self._fh.write(PcapGlobalHeader(snaplen=self._snaplen).pack())
        return self

    def __exit__(self, *exc) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def write_packet(self, timestamp: float, data: bytes) -> None:
        if self._fh is None:
            raise RuntimeError("PcapWriter must be used as a context manager")
        if timestamp < self._last_ts:
            raise ValueError(
                f"out-of-order packet: {timestamp} after {self._last_ts}"
            )
        self._last_ts = timestamp
        incl = min(len(data), self._snaplen)
        rec = PcapRecordHeader.from_timestamp(
            timestamp, incl_len=incl, orig_len=len(data)
        )
        self._fh.write(rec.pack())
        self._fh.write(data[:incl])
        self.packets_written += 1


def write_pcap(path, packets: Iterable[tuple[float, bytes]]) -> int:
    """Write ``(timestamp, frame_bytes)`` pairs; returns the packet count."""
    with PcapWriter(path) as writer:
        for ts, data in packets:
            writer.write_packet(ts, data)
        return writer.packets_written
