"""Extension — the IDS benchmark *workload* over generated datasets.

The paper defines the dataset generator as "a vital component of a
benchmark"; the other component is the workload: "queries on nodes, edges,
paths, and sub-graphs".  This bench runs the mixed query workload from
:mod:`repro.queries` against PGPBA- and PGSK-generated datasets of
increasing size and reports per-family throughput — the measurement a
complete next-generation-IDS benchmark performs on a system under test.
"""

from __future__ import annotations

from conftest import save_series
from repro.bench import default_cluster
from repro.core import PGPBA, PGSK
from repro.queries import QueryWorkload

FACTORS = (5, 20, 80)


def run_workload_sweep(seed_graph, seed_analysis):
    pgsk = PGSK(seed=40, kronfit_iterations=8, kronfit_swaps=30)
    initiator = pgsk.fit_initiator(seed_graph)
    workload = QueryWorkload(n_queries=10, k_hops=2, seed=40)
    rows = []
    for factor in FACTORS:
        target = factor * seed_graph.n_edges
        for name, graph in (
            (
                "PGPBA",
                PGPBA(fraction=0.5, seed=40).generate(
                    seed_graph, seed_analysis, target,
                    context=default_cluster(),
                ).graph,
            ),
            (
                "PGSK",
                pgsk.generate(
                    seed_graph, seed_analysis, target,
                    context=default_cluster(), initiator=initiator,
                ).graph,
            ),
        ):
            report = workload.run(graph)
            qps = report.queries_per_second()
            rows.append(
                [
                    name,
                    graph.n_edges,
                    qps["node"],
                    qps["edge"],
                    qps["path"],
                    qps["subgraph"],
                ]
            )
    return rows


def test_query_workload_on_generated_datasets(
    benchmark, seed_graph, seed_analysis
):
    rows = run_workload_sweep(seed_graph, seed_analysis)
    save_series(
        "query_workload",
        "Extension: query throughput (queries/s) on generated datasets",
        ["dataset", "edges", "node_qps", "edge_qps", "path_qps",
         "subgraph_qps"],
        rows,
    )
    # Every family completes on every dataset with positive throughput.
    for row in rows:
        assert all(v > 0 for v in row[2:])

    graph = PGPBA(fraction=0.5, seed=41).generate(
        seed_graph, seed_analysis, 10 * seed_graph.n_edges,
        context=default_cluster(),
    ).graph
    workload = QueryWorkload(n_queries=10, seed=41)

    def op():
        return workload.run(graph)

    benchmark.pedantic(op, rounds=3, iterations=1)
