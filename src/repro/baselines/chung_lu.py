"""Chung–Lu: random graphs with a given expected degree sequence.

Each directed edge picks its source proportionally to a target out-weight
and its destination proportionally to a target in-weight, so the expected
in/out degree of every vertex matches a prescribed sequence — "capable of
generating networks from almost any real-world desired degree
distribution" (§II).  The weights here are drawn from the *seed's*
empirical in/out degree distributions, making CL the strongest classical
baseline for degree veracity.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import BaselineGenerator

__all__ = ["ChungLu"]


class ChungLu(BaselineGenerator):
    """Directed Chung–Lu with seed-derived expected degrees."""

    name = "CL"

    def edges(self, n_vertices, n_edges, rng, analysis):
        if analysis is None:
            raise ValueError("Chung-Lu requires a seed analysis")
        out_w = analysis.out_degree.sample(n_vertices, rng).astype(
            np.float64
        )
        in_w = analysis.in_degree.sample(n_vertices, rng).astype(np.float64)
        out_cdf = np.cumsum(out_w / out_w.sum())
        in_cdf = np.cumsum(in_w / in_w.sum())
        src = np.searchsorted(out_cdf, rng.random(n_edges), side="right")
        dst = np.searchsorted(in_cdf, rng.random(n_edges), side="right")
        src = np.clip(src, 0, n_vertices - 1)
        dst = np.clip(dst, 0, n_vertices - 1)
        return n_vertices, src, dst
