"""Tests for the command-line interface (python -m repro.cli)."""

import pytest

from repro.cli import main


@pytest.fixture(scope="module")
def seed_pcap(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "seed.pcap"
    rc = main(
        [
            "synth", str(path),
            "--duration", "8", "--session-rate", "30", "--seed", "5",
        ]
    )
    assert rc == 0
    return path


class TestSynth:
    def test_writes_pcap(self, seed_pcap, capsys):
        assert seed_pcap.exists()
        assert seed_pcap.stat().st_size > 24


class TestAnalyze:
    def test_summary(self, seed_pcap, capsys):
        rc = main(["analyze", str(seed_pcap)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "flows (edges)" in out
        assert "mean in-degree" in out

    def test_save(self, seed_pcap, tmp_path, capsys):
        target = tmp_path / "seed.npz"
        rc = main(["analyze", str(seed_pcap), "--save", str(target)])
        assert rc == 0
        assert target.exists()


class TestGenerate:
    def test_pgpba(self, seed_pcap, tmp_path, capsys):
        npz = tmp_path / "syn.npz"
        tsv = tmp_path / "syn.tsv"
        rc = main(
            [
                "generate", str(seed_pcap),
                "--algorithm", "pgpba",
                "--edges", "5000",
                "--fraction", "0.5",
                "--save-npz", str(npz),
                "--save-edges", str(tsv),
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "PGPBA" in out
        assert npz.exists() and tsv.exists()

    def test_pgsk(self, seed_pcap, capsys):
        rc = main(
            [
                "generate", str(seed_pcap),
                "--algorithm", "pgsk",
                "--edges", "3000",
            ]
        )
        assert rc == 0
        assert "PGSK" in capsys.readouterr().out

    def test_roundtrip_veracity(self, seed_pcap, tmp_path, capsys):
        seed_npz = tmp_path / "seed.npz"
        syn_npz = tmp_path / "syn.npz"
        main(["analyze", str(seed_pcap), "--save", str(seed_npz)])
        main(
            [
                "generate", str(seed_pcap),
                "--edges", "4000", "--fraction", "0.5",
                "--save-npz", str(syn_npz),
            ]
        )
        capsys.readouterr()
        rc = main(["veracity", str(seed_npz), str(syn_npz)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "degree veracity" in out


class TestDetect:
    def test_clean_capture(self, seed_pcap, capsys):
        rc = main(
            ["detect", str(seed_pcap), "--baseline", str(seed_pcap)]
        )
        assert rc == 0
        assert "no anomalies" in capsys.readouterr().out

    def test_attack_capture(self, seed_pcap, tmp_path, capsys):
        from repro.pcap.reader import PcapReader
        from repro.pcap.writer import write_pcap
        from repro.trace import attacks
        from repro.trace.hosts import ipv4

        with PcapReader(seed_pcap) as r:
            frames = [(rec.timestamp, bytes(data)) for rec, data in r]
        gt = attacks.syn_flood(
            attacker_ip=ipv4(203, 0, 113, 5),
            victim_ip=ipv4(10, 2, 0, 2),
            start_time=frames[0][0] + 2.0,
        )
        mixed = sorted(frames + gt.frames, key=lambda f: f[0])
        attacked = tmp_path / "attacked.pcap"
        write_pcap(attacked, mixed)

        rc = main(
            ["detect", str(attacked), "--baseline", str(seed_pcap)]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "syn_flood" in out or "tcp_flood" in out
        assert "10.2.0.2" in out


class TestEngineInfo:
    def test_defaults(self, capsys):
        rc = main(["engine-info"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "memory budget" in out and "unlimited" in out
        assert "spill dir" in out and "(system tempdir)" in out
        assert out.count("[default]") >= 6

    def test_flag_beats_env(self, monkeypatch, tmp_path, capsys):
        monkeypatch.setenv("REPRO_MEMORY_BUDGET", "8MB")
        monkeypatch.setenv("REPRO_EXECUTOR", "threads")
        rc = main(
            [
                "engine-info",
                "--memory-budget", "64MB",
                "--spill-dir", str(tmp_path),
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "64.0 MiB" in out and "[flag]" in out
        assert "[env REPRO_EXECUTOR]" in out
        assert str(tmp_path) in out

    def test_cluster_transport_knob_rows(self, monkeypatch, capsys):
        # No daemons needed: the cluster executor connects lazily, and
        # engine-info only resolves knobs.
        monkeypatch.setenv("REPRO_EXECUTOR", "cluster")
        monkeypatch.setenv("REPRO_WORKERS", "127.0.0.1:42701,127.0.0.1:42702")
        monkeypatch.setenv("REPRO_MAX_INFLIGHT", "3")
        monkeypatch.setenv("REPRO_WIRE_CODEC", "lzma")
        monkeypatch.setenv("REPRO_FETCH_PREFETCH", "2")
        rc = main(["engine-info"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "max in-flight" in out and "3 batches/link" in out
        assert "[env REPRO_MAX_INFLIGHT]" in out
        assert "wire codec" in out and "lzma" in out
        assert "[env REPRO_WIRE_CODEC]" in out
        assert "fetch prefetch" in out and "2 connections" in out
        assert "[env REPRO_FETCH_PREFETCH]" in out

    def test_cluster_transport_knob_defaults(self, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_EXECUTOR", "cluster")
        monkeypatch.setenv("REPRO_WORKERS", "127.0.0.1:42701")
        for var in ("REPRO_MAX_INFLIGHT", "REPRO_WIRE_CODEC",
                    "REPRO_FETCH_PREFETCH"):
            monkeypatch.delenv(var, raising=False)
        rc = main(["engine-info"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "2 batches/link" in out  # REPRO_MAX_INFLIGHT default
        assert "zlib" in out            # REPRO_WIRE_CODEC default
        assert "fetch prefetch" in out and "off" in out

    def test_generate_accepts_budget_flags(self, seed_pcap, tmp_path, capsys):
        rc = main(
            [
                "generate", str(seed_pcap),
                "--edges", "3000", "--fraction", "0.5",
                "--memory-budget", "1KB",
                "--spill-dir", str(tmp_path / "spill"),
            ]
        )
        assert rc == 0
        assert "PGPBA" in capsys.readouterr().out


class TestStream:
    def test_bounded_session_prints_stats(self, capsys):
        rc = main(
            [
                "stream",
                "--duration", "12", "--session-rate", "30",
                "--queue-capacity", "4", "--window", "4",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        # Resolved knobs with their sources, engine-info style.
        assert "window         : 4 s" in out and "[flag]" in out
        assert "lateness       : auto" in out and "[default]" in out
        assert "queue capacity : 4" in out
        # The StreamStats block and the detection report.
        assert "events/sec" in out
        assert "queue source→assembly" in out
        assert "depth high-water" in out
        assert "time-to-detection:" in out
        assert "syn_flood" in out and "host_scan" in out
        assert "live graph" in out

    def test_env_sources_reported(self, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_STREAM_WINDOW", "2.5")
        rc = main(
            [
                "stream",
                "--duration", "6", "--session-rate", "20",
                "--attacks", "none",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "window         : 2.5 s" in out
        assert "[env REPRO_STREAM_WINDOW]" in out

    def test_replay_npz(self, tmp_path, capsys):
        from repro.core.pipeline import packets_from
        from repro.netflow import FlowTable, assemble_flows
        from repro.trace import synthesize_seed_packets

        frames = synthesize_seed_packets(
            duration=6.0, session_rate=25, seed=3
        )
        table = FlowTable.from_records(
            list(assemble_flows(packets_from(frames)))
        )
        path = tmp_path / "flows.npz"
        table.save_npz(path)
        rc = main(["stream", "--replay", str(path)])
        assert rc == 0
        out = capsys.readouterr().out
        assert str(path) in out
        assert "events/sec" in out

    def test_unknown_attack_rejected(self, capsys):
        rc = main(["stream", "--attacks", "slowloris"])
        assert rc == 2
        assert "unknown attacks" in capsys.readouterr().err


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["frobnicate"])
