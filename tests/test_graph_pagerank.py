"""Unit tests for repro.graph.pagerank."""

import networkx as nx
import numpy as np
import pytest

from repro.graph import PropertyGraph, pagerank


class TestBasics:
    def test_sums_to_one(self):
        g = PropertyGraph(3, np.array([0, 1]), np.array([1, 2]))
        assert pagerank(g).sum() == pytest.approx(1.0)

    def test_empty_graph(self):
        assert pagerank(PropertyGraph.empty()).size == 0

    def test_no_edges_uniform(self):
        g = PropertyGraph(4, np.empty(0, np.int64), np.empty(0, np.int64))
        assert np.allclose(pagerank(g), 0.25)

    def test_bad_damping(self):
        g = PropertyGraph(2, np.array([0]), np.array([1]))
        with pytest.raises(ValueError):
            pagerank(g, damping=1.0)

    def test_sink_absorbs_rank(self):
        # star into vertex 2: it must carry the largest rank
        g = PropertyGraph(3, np.array([0, 1]), np.array([2, 2]))
        pr = pagerank(g)
        assert np.argmax(pr) == 2

    def test_dangling_mass_redistributed(self):
        # 0 -> 1, vertex 1 dangling: no rank lost.
        g = PropertyGraph(2, np.array([0]), np.array([1]))
        pr = pagerank(g)
        assert pr.sum() == pytest.approx(1.0)
        assert pr[1] > pr[0]


class TestAgainstNetworkx:
    def test_matches_networkx_simple(self):
        rng = np.random.default_rng(0)
        src = rng.integers(0, 25, 120)
        dst = rng.integers(0, 25, 120)
        g = PropertyGraph.from_edge_list(src, dst, n_vertices=25)
        pr = pagerank(g, damping=0.85, tol=1e-12)
        nxg = nx.DiGraph()
        nxg.add_nodes_from(range(25))
        for a, b in zip(src.tolist(), dst.tolist()):
            w = nxg.get_edge_data(a, b, {"weight": 0})["weight"]
            nxg.add_edge(a, b, weight=w + 1)
        expected = nx.pagerank(nxg, alpha=0.85, tol=1e-12, weight="weight")
        for v in range(25):
            assert pr[v] == pytest.approx(expected[v], abs=1e-8)

    def test_parallel_edges_weigh_more(self):
        # 0 sends 3 parallel edges to 1 and one to 2: rank(1) > rank(2).
        g = PropertyGraph(
            3, np.array([0, 0, 0, 0]), np.array([1, 1, 1, 2])
        )
        pr = pagerank(g, weighted=True)
        assert pr[1] > pr[2]

    def test_unweighted_ignores_multiplicity(self):
        g = PropertyGraph(
            3, np.array([0, 0, 0, 0]), np.array([1, 1, 1, 2])
        )
        pr = pagerank(g, weighted=False)
        assert pr[1] == pytest.approx(pr[2])


class TestConvergence:
    def test_tolerance_controls_precision(self):
        rng = np.random.default_rng(5)
        g = PropertyGraph.from_edge_list(
            rng.integers(0, 50, 300), rng.integers(0, 50, 300),
            n_vertices=50,
        )
        loose = pagerank(g, tol=1e-3, max_iter=500)
        tight = pagerank(g, tol=1e-14, max_iter=500)
        # tol is an L1 stopping rule: total error stays near that order.
        assert np.abs(loose - tight).sum() < 1e-2

    def test_max_iter_respected(self):
        g = PropertyGraph(3, np.array([0, 1, 2]), np.array([1, 2, 0]))
        pr = pagerank(g, max_iter=1)
        assert pr.sum() == pytest.approx(1.0)
