"""The micro-batch streaming pipeline: threads, queues, drain, report.

Stage graph (one thread per stage, bounded queues between them)::

    source ──q packets──▶ assembly ──q windows──▶ graph ──q windows──▶ sink

* **source** — pulls micro-batches from a :class:`TraceSource` /
  :class:`ReplaySource`;
* **assembly** — runs the :class:`~repro.stream.stages.WindowAssembler`
  (flow assembly + watermark-driven window close);
* **graph** — folds each window into the
  :class:`~repro.stream.stages.GraphAccumulator`'s live
  :class:`~repro.graph.property_graph.PropertyGraph` and, when a
  :class:`~repro.serve.QueryServer` is attached, installs the updated
  graph via :meth:`~repro.serve.QueryServer.swap` so concurrent queries
  answer against the live stream;
* **sink** — feeds each window's flows to an
  :class:`~repro.detect.OnlineDetector` and matches alarms against the
  injected :class:`~repro.trace.attacks.AttackGroundTruth` list to
  report time-to-detection.

Every stage is deterministic given its input sequence, and the queues
preserve order, so the streamed detections are a pure function of the
source stream — independent of thread scheduling, queue capacity and
window size (under ``auto`` lateness; see :mod:`repro.stream.stages`).

``stop()`` requests an early, *clean* end: the source stops emitting and
the drain protocol runs as usual (assembler flush, partial windows
emitted, detector flushed).  A stage exception aborts the run: the abort
event unblocks every queue operation and :meth:`StreamPipeline.run`
re-raises the stage's error.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

from repro.detect.online import OnlineDetector, TimedDetection
from repro.stream.config import (
    resolve_lateness,
    resolve_queue_capacity,
    resolve_window_seconds,
)
from repro.stream.queues import CLOSE, BoundedQueue, PipelineAborted
from repro.stream.sources import Batch
from repro.stream.stages import GraphAccumulator, WindowAssembler
from repro.stream.stats import QueueStats, StageStats, StreamStats

__all__ = ["StreamPipeline", "StreamResult", "DetectionLatency",
           "match_ground_truth"]


# Ground-truth kind -> detector kinds that count as catching it.
_MATCHING_KINDS = {
    "syn_flood": ("syn_flood", "ddos_syn_flood", "tcp_flood"),
    "ddos_syn_flood": ("ddos_syn_flood", "syn_flood", "tcp_flood"),
    "host_scan": ("host_scan",),
    "network_scan": ("network_scan",),
    "udp_flood": ("udp_flood", "udp_flood_source"),
    "icmp_flood": ("icmp_flood", "icmp_flood_source"),
}


@dataclass(frozen=True)
class DetectionLatency:
    """Time-to-detection for one injected attack."""

    kind: str
    attack_start: float
    attack_end: float
    detected_kind: str | None
    detected_at: float | None

    @property
    def detected(self) -> bool:
        return self.detected_at is not None

    @property
    def seconds_to_detection(self) -> float | None:
        if self.detected_at is None:
            return None
        return self.detected_at - self.attack_start


def match_ground_truth(
    detections: list[TimedDetection], ground_truth
) -> list[DetectionLatency]:
    """Match the alarm stream against injected attacks.

    An alarm catches an attack when its kind is in the attack's accepted
    set, its detection IP is one of the attack's endpoints, and it fired
    at or after the attack began; the earliest such alarm defines the
    time-to-detection.
    """
    out = []
    for gt in ground_truth:
        kinds = _MATCHING_KINDS.get(gt.kind, (gt.kind,))
        ips = set(gt.victim_ips) | set(gt.attacker_ips)
        hit = None
        for alert in detections:
            det = alert.detection
            if (
                det.kind in kinds
                and det.ip in ips
                and alert.time >= gt.start_time
            ):
                hit = alert
                break
        out.append(
            DetectionLatency(
                kind=gt.kind,
                attack_start=gt.start_time,
                attack_end=gt.end_time,
                detected_kind=hit.detection.kind if hit else None,
                detected_at=hit.time if hit else None,
            )
        )
    return out


@dataclass(frozen=True)
class StreamResult:
    """Everything one pipeline run produces."""

    detections: tuple[TimedDetection, ...]
    latencies: tuple[DetectionLatency, ...]
    stats: StreamStats
    graph: object  # final live PropertyGraph (None if no flows)
    windows: int


class _Stage:
    """Bookkeeping shared by the four stage threads."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.events_in = 0
        self.events_out = 0
        self.batches_in = 0
        self.batches_out = 0
        self.busy_seconds = 0.0

    def stats(self) -> StageStats:
        return StageStats(
            name=self.name,
            events_in=self.events_in,
            events_out=self.events_out,
            batches_in=self.batches_in,
            batches_out=self.batches_out,
            busy_seconds=self.busy_seconds,
        )


class StreamPipeline:
    """Bounded-queue micro-batch pipeline from trace source to online
    detection.

    Parameters
    ----------
    source:
        A :class:`~repro.stream.sources.TraceSource` or
        :class:`~repro.stream.sources.ReplaySource`.
    detector:
        The online detector the sink drives; a default
        :class:`OnlineDetector` when omitted.
    window_seconds, lateness, queue_capacity:
        Micro-batch knobs (argument → ``REPRO_STREAM_WINDOW`` /
        ``REPRO_STREAM_LATENESS`` / ``REPRO_STREAM_QUEUE`` env var →
        default).
    idle_timeout, max_flow_duration:
        Flow-assembly timeouts (also the inputs to the ``auto``
        lateness bound).
    server:
        Optional :class:`~repro.serve.QueryServer`; the graph stage
        swaps the live graph into it after every window.
    ground_truth:
        Injected attacks to match for time-to-detection.  Defaults to
        ``source.attacks`` when the source carries them.
    sink_delay_seconds:
        Artificial per-window sink latency (benchmarks/tests use it to
        force backpressure; keep 0 otherwise).
    """

    def __init__(
        self,
        source,
        *,
        detector: OnlineDetector | None = None,
        window_seconds: float | str | None = None,
        lateness: float | str | None = None,
        queue_capacity: int | str | None = None,
        idle_timeout: float = 60.0,
        max_flow_duration: float = 3600.0,
        server=None,
        ground_truth=None,
        sink_delay_seconds: float = 0.0,
    ) -> None:
        self.source = source
        self.detector = detector if detector is not None else OnlineDetector()
        self.window_seconds = resolve_window_seconds(window_seconds)
        self.lateness = resolve_lateness(lateness)
        self.queue_capacity = resolve_queue_capacity(queue_capacity)
        self.idle_timeout = idle_timeout
        self.max_flow_duration = max_flow_duration
        self.server = server
        if ground_truth is None:
            ground_truth = tuple(getattr(source, "attacks", ()) or ())
        self.ground_truth = tuple(ground_truth)
        if sink_delay_seconds < 0:
            raise ValueError("sink_delay_seconds must be non-negative")
        self.sink_delay_seconds = sink_delay_seconds

        self._stop = threading.Event()
        self._abort = threading.Event()
        self._errors: list[tuple[str, BaseException]] = []
        self._errors_lock = threading.Lock()
        self._ran = False

    # ------------------------------------------------------------------
    def stop(self) -> None:
        """Ask the source to finish early; the drain still runs."""
        self._stop.set()

    @property
    def stopped(self) -> bool:
        return self._stop.is_set()

    # ------------------------------------------------------------------
    def run(self) -> StreamResult:
        """Run the pipeline to completion and return the drain report."""
        if self._ran:
            raise RuntimeError("a StreamPipeline instance runs once")
        self._ran = True

        cap = self.queue_capacity
        q_packets = BoundedQueue(cap, name="source→assembly")
        q_windows = BoundedQueue(cap, name="assembly→graph")
        q_detect = BoundedQueue(cap, name="graph→sink")

        assembler = WindowAssembler(
            window_seconds=self.window_seconds,
            lateness=self.lateness,
            idle_timeout=self.idle_timeout,
            max_flow_duration=self.max_flow_duration,
        )
        accumulator = GraphAccumulator()
        stages = {
            name: _Stage(name)
            for name in ("source", "assembly", "graph", "sink")
        }
        detections: list[TimedDetection] = []
        window_latencies: list[float] = []
        windows_seen = [0]

        def guarded(name: str, body) -> None:
            try:
                body()
            except PipelineAborted:
                pass
            except BaseException as exc:  # noqa: BLE001 - reported to run()
                with self._errors_lock:
                    self._errors.append((name, exc))
                self._abort.set()

        # -- source ----------------------------------------------------
        def run_source() -> None:
            st = stages["source"]
            t0 = time.perf_counter()
            batches = self.source.batches()
            st.busy_seconds += time.perf_counter() - t0
            for batch in batches:
                if self._stop.is_set():
                    break
                st.batches_out += 1
                st.events_out += len(batch)
                q_packets.put(batch, self._abort)
            q_packets.close(self._abort)

        # -- assembly --------------------------------------------------
        def run_assembly() -> None:
            st = stages["assembly"]
            while True:
                item = q_packets.get(self._abort)
                if item is CLOSE:
                    t0 = time.perf_counter()
                    closed = assembler.drain()
                    st.busy_seconds += time.perf_counter() - t0
                else:
                    st.batches_in += 1
                    st.events_in += len(item)
                    t0 = time.perf_counter()
                    if item.kind == "packets":
                        closed = assembler.process_packets(item.items)
                    else:
                        closed = assembler.process_records(item.items)
                    st.busy_seconds += time.perf_counter() - t0
                for window in closed:
                    st.batches_out += 1
                    st.events_out += len(window)
                    q_windows.put(window, self._abort)
                if item is CLOSE:
                    q_windows.close(self._abort)
                    return

        # -- graph delta -----------------------------------------------
        def run_graph() -> None:
            st = stages["graph"]
            while True:
                window = q_windows.get(self._abort)
                if window is CLOSE:
                    q_detect.close(self._abort)
                    return
                st.batches_in += 1
                st.events_in += len(window)
                t0 = time.perf_counter()
                graph = accumulator.fold(window)
                if self.server is not None:
                    self.server.swap(graph)
                st.busy_seconds += time.perf_counter() - t0
                st.batches_out += 1
                st.events_out += len(window)
                q_detect.put(window, self._abort)

        # -- detection sink --------------------------------------------
        def run_sink() -> None:
            st = stages["sink"]
            while True:
                window = q_detect.get(self._abort)
                if window is CLOSE:
                    t0 = time.perf_counter()
                    detections.extend(self.detector.flush())
                    st.busy_seconds += time.perf_counter() - t0
                    return
                st.batches_in += 1
                st.events_in += len(window)
                if self.sink_delay_seconds:
                    time.sleep(self.sink_delay_seconds)
                t0 = time.perf_counter()
                for record in window.records:
                    detections.extend(self.detector.process(record))
                st.busy_seconds += time.perf_counter() - t0
                windows_seen[0] += 1
                window_latencies.append(
                    time.perf_counter() - window.closed_at_wall
                )
                st.events_out += len(window)
                st.batches_out += 1

        bodies = {
            "source": run_source,
            "assembly": run_assembly,
            "graph": run_graph,
            "sink": run_sink,
        }
        threads = [
            threading.Thread(
                target=guarded, args=(name, body),
                name=f"repro-stream-{name}", daemon=True,
            )
            for name, body in bodies.items()
        ]
        wall0 = time.perf_counter()
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        wall = time.perf_counter() - wall0

        if self._errors:
            name, exc = self._errors[0]
            raise RuntimeError(f"stream stage {name!r} failed: {exc}") from exc

        stats = StreamStats.build(
            wall_seconds=wall,
            stages=[stages[n].stats() for n in bodies],
            queues=[
                QueueStats(
                    name=q.name,
                    capacity=q.capacity,
                    puts=q.puts,
                    depth_high_water=q.depth_high_water,
                    backpressure_stalls=q.stall_count,
                    stall_seconds=q.stall_seconds,
                )
                for q in (q_packets, q_windows, q_detect)
            ],
            windows=windows_seen[0],
            late_flows=assembler.late_flows,
            packets=stages["source"].events_out,
            flows=assembler.flows_out,
            detections=len(detections),
            window_latencies=window_latencies,
        )
        return StreamResult(
            detections=tuple(detections),
            latencies=tuple(
                match_ground_truth(detections, self.ground_truth)
            ),
            stats=stats,
            graph=accumulator.graph() if accumulator.n_edges else None,
            windows=windows_seen[0],
        )
