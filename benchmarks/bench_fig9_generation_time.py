"""Fig. 9 — edges generation time comparison of PGPBA and PGSK.

Paper: on 60 nodes, generating graphs from 4 M to 20 B edges, both
algorithms' generation time is linear in the output size and PGPBA is the
faster of the two.  PGPBA runs with fraction = 2 so its per-iteration
growth matches PGSK's per-level doubling.

Here: the same sweep at laptop scale (8x to 512x the ~2k-edge seed) on the
simulated 60-node cluster; asserts linearity (log-log slope ~ 1) and the
PGPBA win.
"""

from __future__ import annotations

import numpy as np

from conftest import save_series
from repro.bench import default_cluster
from repro.core import PGPBA, PGSK

FACTORS = (8, 32, 128, 512)


def run_fig9(seed_graph, seed_analysis):
    pgsk = PGSK(seed=9, kronfit_iterations=8, kronfit_swaps=30)
    initiator = pgsk.fit_initiator(seed_graph)
    rows = []
    for factor in FACTORS:
        target = factor * seed_graph.n_edges
        res_ba = PGPBA(fraction=2.0, seed=9).generate(
            seed_graph, seed_analysis, target, context=default_cluster()
        )
        res_sk = pgsk.generate(
            seed_graph, seed_analysis, target,
            context=default_cluster(), initiator=initiator,
        )
        rows.append(
            [
                target,
                res_ba.graph.n_edges,
                res_ba.total_seconds,
                res_sk.graph.n_edges,
                res_sk.total_seconds,
            ]
        )
    return rows


def test_fig9_generation_time(benchmark, seed_graph, seed_analysis):
    rows = run_fig9(seed_graph, seed_analysis)
    save_series(
        "fig9",
        "Fig. 9: generation time (simulated s) vs size, 60 nodes, fraction=2",
        ["target_edges", "PGPBA_edges", "PGPBA_s", "PGSK_edges", "PGSK_s"],
        rows,
    )
    sizes = np.log([r[0] for r in rows])
    t_ba = np.log([r[2] for r in rows])
    t_sk = np.log([r[4] for r in rows])
    slope_ba = np.polyfit(sizes, t_ba, 1)[0]
    slope_sk = np.polyfit(sizes, t_sk, 1)[0]
    # Linear scaling: time grows at most ~linearly with size.  (At small
    # sizes the constant platform overhead flattens the curve, so slopes
    # land in (0, 1.3) rather than exactly 1 — same as the paper's left
    # region.)
    assert 0.0 < slope_ba < 1.3
    assert 0.0 < slope_sk < 1.3
    # PGPBA provides the better performance at the largest size.
    assert rows[-1][2] < rows[-1][4]

    def op():
        return PGPBA(fraction=2.0, seed=10).generate(
            seed_graph, seed_analysis, 32 * seed_graph.n_edges,
            context=default_cluster(),
        )

    benchmark.pedantic(op, rounds=1, iterations=1)
