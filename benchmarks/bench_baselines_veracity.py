"""Extension — veracity comparison against the §II baseline models.

The paper motivates PGPBA/PGSK by the failure of the classical models to
reproduce network-trace structure (ER/WS have no hubs; SBM/BTER target
communities, not tails).  This bench makes the comparison quantitative:
every baseline generates a graph of the same size, decorated with the same
Netflow property model, and is scored with the same veracity metrics.
Expected ordering: the seed-degree-aware generators (PGPBA, PGSK, CL,
BTER) clearly beat the degree-blind ones (ER, WS) on degree shape.
"""

from __future__ import annotations

from conftest import save_series
from repro.baselines import (
    BTER,
    ChungLu,
    ErdosRenyi,
    RMat,
    StochasticBlockModel,
    WattsStrogatz,
)
from repro.bench import default_cluster
from repro.core import PGPBA, PGSK, evaluate_veracity

SIZE_FACTOR = 20


def run_comparison(seed_graph, seed_analysis):
    size = SIZE_FACTOR * seed_graph.n_edges
    graphs = {}

    res = PGPBA(fraction=0.3, seed=30).generate(
        seed_graph, seed_analysis, size, context=default_cluster()
    )
    graphs["PGPBA"] = res.graph
    pgsk = PGSK(seed=30, kronfit_iterations=10, kronfit_swaps=40)
    res = pgsk.generate(
        seed_graph, seed_analysis, size, context=default_cluster()
    )
    graphs["PGSK"] = res.graph

    for model in (
        ErdosRenyi(seed=30),
        WattsStrogatz(seed=30),
        ChungLu(seed=30),
        RMat(seed=30),
        StochasticBlockModel(seed=30),
        BTER(seed=30),
    ):
        graphs[model.name] = model.generate(seed_analysis, size)

    rows = []
    reports = {}
    for name, g in graphs.items():
        rep = evaluate_veracity(seed_graph, g)
        reports[name] = rep
        rows.append(
            [
                name,
                g.n_edges,
                g.n_vertices,
                rep.degree_score,
                rep.degree_ks,
                rep.pagerank_ks,
            ]
        )
    rows.sort(key=lambda r: r[4])  # by degree shape
    return rows, reports


def test_baselines_veracity_comparison(benchmark, seed_graph, seed_analysis):
    rows, reports = run_comparison(seed_graph, seed_analysis)
    save_series(
        "baselines",
        "Extension: veracity comparison across generator models "
        f"({SIZE_FACTOR}x seed)",
        ["model", "edges", "vertices", "degree_score", "degree_ks",
         "pagerank_ks"],
        rows,
    )
    # Degree-aware models track the seed's degree shape better than the
    # degree-blind classics.
    for aware in ("PGPBA", "CL"):
        for blind in ("ER", "WS"):
            assert reports[aware].degree_ks < reports[blind].degree_ks, (
                aware, blind,
            )

    def op():
        return ChungLu(seed=31).generate(
            seed_analysis, 10 * seed_graph.n_edges
        )

    benchmark.pedantic(op, rounds=3, iterations=1)
