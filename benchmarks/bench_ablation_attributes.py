"""Ablation — conditional vs unconditional Netflow attribute sampling.

The seed-analysis step (Fig. 1) fits p(IN_BYTES) and p(a | IN_BYTES) for
every other attribute a.  This ablation quantifies what the conditional
model buys: the correlation structure between attribute columns of the
generated edges.  Unconditional (marginal) sampling reproduces each
attribute's distribution but destroys the couplings — a generated flow can
move a gigabyte in one packet.
"""

from __future__ import annotations

import numpy as np

from conftest import save_series
from repro.bench import default_cluster
from repro.core import PGPBA

PAIRS = (("IN_BYTES", "IN_PKTS"), ("OUT_BYTES", "OUT_PKTS"),
         ("IN_BYTES", "DURATION"))


def _corr(graph, a, b) -> float:
    x = np.asarray(graph.edge_properties[a], dtype=np.float64)
    y = np.asarray(graph.edge_properties[b], dtype=np.float64)
    if np.std(x) == 0 or np.std(y) == 0:
        return 0.0
    return float(np.corrcoef(x, y)[0, 1])


def run_ablation(seed_graph, seed_analysis):
    target = 20 * seed_graph.n_edges
    graphs = {}
    for conditional in (True, False):
        res = PGPBA(
            fraction=0.5, seed=20, conditional_properties=conditional
        ).generate(
            seed_graph, seed_analysis, target, context=default_cluster()
        )
        graphs[conditional] = res.graph
    rows = []
    for a, b in PAIRS:
        rows.append(
            [
                f"{a}~{b}",
                _corr(seed_graph, a, b),
                _corr(graphs[True], a, b),
                _corr(graphs[False], a, b),
            ]
        )
    return rows


def test_ablation_conditional_attributes(
    benchmark, seed_graph, seed_analysis
):
    rows = run_ablation(seed_graph, seed_analysis)
    save_series(
        "ablation_attributes",
        "Ablation: attribute correlations — seed vs conditional vs marginal",
        ["pair", "seed_corr", "conditional_corr", "marginal_corr"],
        rows,
    )
    for pair, seed_c, cond_c, marg_c in rows:
        if seed_c > 0.3:
            # Conditional sampling preserves a clearly positive coupling;
            # marginal sampling collapses it toward zero.
            assert cond_c > marg_c + 0.1, pair
            assert abs(marg_c) < 0.2, pair

    def op():
        return PGPBA(
            fraction=1.0, seed=21, conditional_properties=True
        ).generate(
            seed_graph, seed_analysis, 5 * seed_graph.n_edges,
            context=default_cluster(),
        )

    benchmark.pedantic(op, rounds=1, iterations=1)
