"""Offline intrusion detection over property graphs.

The paper's §VI future work: "extend the platform to fully support
off-line intrusion detection".  This pipeline runs the Fig. 4 detector
over a property graph carrying Netflow edge attributes — seed graphs or
*generated* synthetic graphs alike — optionally windowed by START_TIME so
long captures are analysed in slices, as a streaming deployment would.

Generated graphs carry only the paper's nine attributes, so the SYN/ACK
tallies Table I needs are reconstructed from PROTOCOL and STATE: every TCP
flow implies one SYN, and states that include an established handshake
(S1, SF, RSTO, RSTR) imply ACKs roughly proportional to the packet count.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.detect.detector import Detection, NetflowAnomalyDetector
from repro.detect.thresholds import DetectionThresholds
from repro.graph.property_graph import PropertyGraph
from repro.netflow.attributes import Protocol, TcpState
from repro.netflow.mapping import property_graph_to_flow_columns

__all__ = ["OfflineDetectionPipeline", "WindowedDetections"]

_ESTABLISHED_STATES = (
    int(TcpState.S1),
    int(TcpState.SF),
    int(TcpState.RSTO),
    int(TcpState.RSTR),
)


@dataclass(frozen=True)
class WindowedDetections:
    """Detections raised within one time window."""

    window_start: float
    window_end: float
    detections: tuple[Detection, ...]


class OfflineDetectionPipeline:
    """Graph-in, alarms-out offline detector."""

    def __init__(
        self, thresholds: DetectionThresholds | None = None
    ) -> None:
        self.detector = NetflowAnomalyDetector(thresholds)

    # ------------------------------------------------------------------
    def detect(self, graph: PropertyGraph) -> list[Detection]:
        """Detect over the whole graph at once."""
        cols = self._columns(graph)
        return self.detector.detect(cols)

    def detect_windowed(
        self, graph: PropertyGraph, *, window_seconds: float
    ) -> list[WindowedDetections]:
        """Slice the graph's flows by START_TIME and detect per window."""
        if window_seconds <= 0:
            raise ValueError("window_seconds must be positive")
        cols = self._columns(graph)
        times = cols.get("START_TIME")
        if times is None:
            raise ValueError(
                "graph carries no START_TIME edge attribute; use detect()"
            )
        times = np.asarray(times, dtype=np.float64)
        if times.size == 0:
            return []
        t0 = float(times.min())
        idx = ((times - t0) // window_seconds).astype(np.int64)
        out: list[WindowedDetections] = []
        for w in np.unique(idx):
            mask = idx == w
            window_cols = {k: np.asarray(v)[mask] for k, v in cols.items()}
            dets = self.detector.detect(window_cols)
            out.append(
                WindowedDetections(
                    window_start=t0 + w * window_seconds,
                    window_end=t0 + (w + 1) * window_seconds,
                    detections=tuple(dets),
                )
            )
        return out

    # ------------------------------------------------------------------
    @staticmethod
    def _columns(graph: PropertyGraph) -> dict[str, np.ndarray]:
        cols = property_graph_to_flow_columns(graph)
        required = ("PROTOCOL", "DEST_PORT", "OUT_BYTES", "IN_BYTES",
                    "OUT_PKTS", "IN_PKTS", "STATE")
        missing = [c for c in required if c not in cols]
        if missing:
            raise ValueError(
                f"graph lacks Netflow edge attributes: {missing}"
            )
        if "SYN_COUNT" not in cols or "ACK_COUNT" not in cols:
            proto = np.asarray(cols["PROTOCOL"], dtype=np.int64)
            state = np.asarray(cols["STATE"], dtype=np.int64)
            pkts = (
                np.asarray(cols["OUT_PKTS"], dtype=np.int64)
                + np.asarray(cols["IN_PKTS"], dtype=np.int64)
            )
            is_tcp = proto == int(Protocol.TCP)
            established = np.isin(state, _ESTABLISHED_STATES)
            cols = dict(cols)
            cols["SYN_COUNT"] = np.where(is_tcp, 1, 0).astype(np.int64)
            cols["ACK_COUNT"] = np.where(
                is_tcp & established, np.maximum(pkts - 1, 1), 0
            ).astype(np.int64)
        return cols
