"""Pipelined, compressed cluster transport: frames, knobs, streaming fetch.

Contracts under test:

* **Wire compression** — frames round-trip bit-exactly for every codec
  and for buffer sizes straddling the compression threshold; per-buffer
  codec flags mean a receiver never needs to know the sender's setting.
* **Knob resolution** — ``REPRO_MAX_INFLIGHT`` / ``REPRO_WIRE_CODEC`` /
  ``REPRO_FETCH_PREFETCH`` resolvers and the handshake's codec
  negotiation (unknown codec falls back to ``off``, never an error).
* **Daemon responsiveness** — heartbeat pings are answered while the
  daemon inflates a large compressed batch, because decompression runs
  off the event loop.
* **Streaming fetch** — multi-chunk fetches are byte-identical for RBLK
  and raw files; a connection dropped mid-stream leaves no orphan tmp
  file; prefetch stages the predicted next shuffle segment.
* **Digest invariance** — the (inflight x wire-codec) matrix produces
  byte-identical results and simulated stage records vs the serial
  backend.
"""

from __future__ import annotations

import asyncio
import hashlib
import socket
import threading
import time

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.engine import ClusterContext
from repro.engine.cluster import (
    BlockFetcher,
    launch_worker,
    predict_next_segments,
    resolve_fetch_prefetch,
    shutdown_worker,
    sockets_available,
)
from repro.engine.netproto import (
    DEFAULT_MAX_INFLIGHT,
    DEFAULT_WIRE_CODEC,
    PROTOCOL_VERSION,
    WIRE_COMPRESS_MIN_BYTES,
    build_frame,
    negotiate_wire_codec,
    recv_message,
    resolve_max_inflight,
    resolve_wire_codec,
    send_message,
)

pytestmark = pytest.mark.skipif(
    not sockets_available(), reason="loopback sockets unavailable"
)


def digest(arrays) -> str:
    h = hashlib.sha256()
    for a in arrays:
        h.update(np.ascontiguousarray(a).tobytes())
    return h.hexdigest()


# ----------------------------------------------------------------------
# Compressed frames round-trip bit-exactly
# ----------------------------------------------------------------------
class TestWireCompression:
    @settings(max_examples=40, deadline=None)
    @given(
        codec=st.sampled_from(["off", "zlib", "lzma"]),
        sizes=st.lists(
            st.sampled_from(
                [
                    0,
                    1,
                    WIRE_COMPRESS_MIN_BYTES - 1,
                    WIRE_COMPRESS_MIN_BYTES,
                    WIRE_COMPRESS_MIN_BYTES + 1,
                    3 * WIRE_COMPRESS_MIN_BYTES,
                ]
            ),
            min_size=0,
            max_size=4,
        ),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_roundtrip_across_threshold_and_codecs(self, codec, sizes, seed):
        rng = np.random.default_rng(seed)
        # Half-random payloads: compressible enough for the codec to
        # engage on some buffers, incompressible enough to exercise the
        # keep-raw-when-bigger path on others.
        payloads = []
        for n in sizes:
            raw = rng.integers(0, 8, size=n, dtype=np.uint8).tobytes()
            payloads.append(raw if n % 2 else b"\x2a" * n)
        a, b = socket.socketpair()
        try:
            wire, raw = send_message(
                a, ("run", {"codec": codec}), payloads, codec=codec
            )
            obj, buffers, got_wire, got_raw = recv_message(b)
        finally:
            a.close()
            b.close()
        assert obj == ("run", {"codec": codec})
        assert [bytes(buf) for buf in buffers] == payloads
        assert (got_wire, got_raw) == (wire, raw)
        if codec == "off":
            assert wire == raw
        else:
            assert wire <= raw

    def test_compression_only_when_smaller(self):
        # An incompressible buffer above the threshold must ship raw
        # (codec id 0) rather than grow on the wire.
        noise = np.random.default_rng(0).bytes(2 * WIRE_COMPRESS_MIN_BYTES)
        parts, wire, raw = build_frame(("x",), [noise], codec="zlib")
        assert wire <= raw + 32  # at most the per-buffer header overhead
        compressible = b"\x00" * (2 * WIRE_COMPRESS_MIN_BYTES)
        _parts, wire2, raw2 = build_frame(("x",), [compressible], codec="zlib")
        assert wire2 < raw2 / 2

    def test_mixed_peer_decode_is_codec_agnostic(self):
        # A frame built with lzma decodes on a receiver that never heard
        # of the sender's setting: the codec id rides each buffer.
        payload = b"edge-list " * 4096
        a, b = socket.socketpair()
        try:
            send_message(a, ("run", 0), [payload], codec="lzma")
            _obj, buffers, _w, _r = recv_message(b)
        finally:
            a.close()
            b.close()
        assert bytes(buffers[0]) == payload


# ----------------------------------------------------------------------
# Knob resolution + handshake negotiation
# ----------------------------------------------------------------------
class TestKnobResolution:
    def test_max_inflight(self, monkeypatch):
        assert resolve_max_inflight(None) == DEFAULT_MAX_INFLIGHT
        assert resolve_max_inflight(5) == 5
        monkeypatch.setenv("REPRO_MAX_INFLIGHT", "3")
        assert resolve_max_inflight(None) == 3
        with pytest.raises(ValueError):
            resolve_max_inflight(0)
        monkeypatch.setenv("REPRO_MAX_INFLIGHT", "nope")
        with pytest.raises(ValueError):
            resolve_max_inflight(None)

    def test_wire_codec(self, monkeypatch):
        assert resolve_wire_codec(None) == DEFAULT_WIRE_CODEC
        assert resolve_wire_codec("off") == "off"
        assert resolve_wire_codec("none") == "off"
        assert resolve_wire_codec("LZMA") == "lzma"
        monkeypatch.setenv("REPRO_WIRE_CODEC", "off")
        assert resolve_wire_codec(None) == "off"
        with pytest.raises(ValueError, match="REPRO_WIRE_CODEC"):
            resolve_wire_codec("snappy")

    def test_fetch_prefetch(self, monkeypatch):
        assert resolve_fetch_prefetch(None) == 0
        assert resolve_fetch_prefetch(2) == 2
        monkeypatch.setenv("REPRO_FETCH_PREFETCH", "4")
        assert resolve_fetch_prefetch(None) == 4
        with pytest.raises(ValueError):
            resolve_fetch_prefetch(-1)

    def test_negotiate_falls_back_to_off(self):
        assert negotiate_wire_codec("zlib") == "zlib"
        assert negotiate_wire_codec("lzma") == "lzma"
        # A codec this build doesn't know (a newer peer's setting, or a
        # pre-negotiation peer sending nothing) degrades to uncompressed
        # rather than failing the handshake.
        assert negotiate_wire_codec("zstd-9000") == "off"
        assert negotiate_wire_codec(None) == "off"

    def test_predict_next_segments(self):
        assert predict_next_segments("es3-m2-d5.npz") == [
            "es3-m2-d6.npz",
            "es3-m3-d5.npz",
        ]
        assert predict_next_segments("ex1-m7.blk") == ["ex1-m8.blk"]
        assert predict_next_segments("block_7.npz") == []
        assert predict_next_segments("not-a-segment") == []


# ----------------------------------------------------------------------
# Heartbeats stay prompt while a worker decompresses a large frame
# ----------------------------------------------------------------------
class TestHeartbeatDuringDecompress:
    def test_ping_answered_while_frame_inflates(self, monkeypatch):
        import repro.engine.cluster as cluster_mod

        # Stall decompression without burning CPU, and keep the batch
        # from reaching a real task child: the contract under test is
        # the daemon's event loop, not task execution.
        real_decode = cluster_mod.decode_buffers

        def slow_decode(entries):
            time.sleep(1.5)
            return real_decode(entries)

        monkeypatch.setattr(cluster_mod, "decode_buffers", slow_decode)
        monkeypatch.setattr(
            cluster_mod._DriverSession,
            "dispatch",
            lambda self, blob, buffers: None,
        )

        daemon = cluster_mod.WorkerDaemon("127.0.0.1:0")
        holder: dict = {}
        started = threading.Event()

        def serve() -> None:
            asyncio.run(daemon._main(lambda a: (holder.update(addr=a),
                                                started.set())))

        thread = threading.Thread(target=serve, daemon=True)
        thread.start()
        assert started.wait(10)

        from repro.engine.netproto import client_handshake, connect

        sock = connect(holder["addr"], timeout=5)
        try:
            client_handshake(
                sock, {"role": "driver", "peers": [], "wire_codec": "zlib"}
            )
            big = b"\x00" * (4 * WIRE_COMPRESS_MIN_BYTES)
            send_message(sock, ("run", b"blob", 0), [big], codec="zlib")
            ping_sent = time.perf_counter()
            send_message(sock, ("ping", ping_sent))
            obj, _b, _w, _r = recv_message(sock)
            latency = time.perf_counter() - ping_sent
            assert obj[0] == "pong"
            # The pong must not have waited out the 1.5s decompress.
            assert latency < 1.0
        finally:
            sock.close()
            daemon.request_stop()
            thread.join(timeout=10)


# ----------------------------------------------------------------------
# Streaming fetch: chunked transfers, orphan cleanup, prefetch
# ----------------------------------------------------------------------
class TestStreamingFetch:
    def test_multi_chunk_fetch_byte_identical(self, tmp_path, monkeypatch):
        # Small chunks force several frames per file for both layouts:
        # RBLK (chunk-table spans) and raw bytes (fixed slices).
        monkeypatch.setenv("REPRO_CODEC_CHUNK_BYTES", "8192")
        from repro.engine.storage.codecs import get_codec

        served = tmp_path / "served"
        local = tmp_path / "local"
        served.mkdir()
        local.mkdir()
        cols = (
            np.arange(40_000, dtype=np.int64),
            np.linspace(0.0, 1.0, 40_000),
        )
        get_codec("zlib").write(str(served / "block_3.blk"), cols)
        raw = np.random.default_rng(7).bytes(50_000)
        (served / "shuffle_1_2.blk").write_bytes(raw)

        proc, addr = launch_worker(roots=(served,))
        fetcher = BlockFetcher([addr], wire_codec="zlib")
        try:
            for name in ("block_3.blk", "shuffle_1_2.blk"):
                assert fetcher(local / name) is True
                assert (
                    (local / name).read_bytes()
                    == (served / name).read_bytes()
                )
            assert fetcher.fetched == 2
        finally:
            fetcher.close()
            shutdown_worker(addr)
            try:
                proc.wait(timeout=10)
            except Exception:
                proc.kill()

    def test_dropped_connection_leaves_no_orphan_tmp(self, tmp_path):
        """Regression: a serving daemon dying mid-fetch used to strand a
        partial tmp file next to the target.  The stream now unlinks it
        on any non-`fetch-end` exit."""
        server = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        server.bind(("127.0.0.1", 0))
        server.listen(1)
        host, port = server.getsockname()

        def half_serve() -> None:
            conn, _ = server.accept()
            try:
                recv_message(conn)  # hello
                send_message(
                    conn,
                    ("hello-ok", PROTOCOL_VERSION,
                     {"pid": 0, "roots": 1, "wire_codec": "off"}),
                )
                recv_message(conn)  # ("fetch", name)
                # One chunk, then die mid-stream (daemon killed).
                send_message(
                    conn, ("chunk", "shuffle_9_9.blk", 0), [b"x" * 4096]
                )
            finally:
                conn.close()

        thread = threading.Thread(target=half_serve, daemon=True)
        thread.start()
        local = tmp_path / "local"
        local.mkdir()
        fetcher = BlockFetcher([f"{host}:{port}"], timeout=5.0)
        try:
            assert fetcher(local / "shuffle_9_9.blk") is False
            assert fetcher.misses == 1
        finally:
            fetcher.close()
            server.close()
            thread.join(timeout=5)
        leftovers = [p.name for p in local.iterdir()]
        assert leftovers == []  # no target, no `.fetch-*` orphan

    def test_mid_fetch_daemon_kill_cleans_up(self, tmp_path, monkeypatch):
        # The same contract against a real daemon: SIGKILL it while a
        # many-chunk transfer is in flight.  Tiny chunks keep the stream
        # long enough that the kill lands mid-transfer.
        monkeypatch.setenv("REPRO_CODEC_CHUNK_BYTES", "4096")
        served = tmp_path / "served"
        local = tmp_path / "local"
        served.mkdir()
        local.mkdir()
        (served / "shuffle_5_5.blk").write_bytes(
            np.random.default_rng(1).bytes(2_000_000)
        )
        proc, addr = launch_worker(roots=(served,))
        fetcher = BlockFetcher([addr], timeout=5.0)
        killer = threading.Timer(0.05, proc.kill)
        try:
            killer.start()
            fetcher(local / "shuffle_5_5.blk")  # True or False: no hang
        finally:
            killer.cancel()
            fetcher.close()
            try:
                proc.wait(timeout=10)
            except Exception:
                proc.kill()
        for p in local.iterdir():
            assert not p.name.startswith("."), f"orphan tmp {p.name}"

    def test_prefetch_stages_predicted_segment(self, tmp_path):
        served = tmp_path / "served"
        local = tmp_path / "local"
        served.mkdir()
        local.mkdir()
        first = np.arange(9_000, dtype=np.int64).tobytes()
        second = np.arange(9_000, 18_000, dtype=np.int64).tobytes()
        (served / "es0-m0-d0.npz").write_bytes(first)
        (served / "es0-m0-d1.npz").write_bytes(second)

        proc, addr = launch_worker(roots=(served,))
        fetcher = BlockFetcher([addr], prefetch=1)
        try:
            assert fetcher(local / "es0-m0-d0.npz") is True
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline and fetcher.prefetched == 0:
                time.sleep(0.02)
            assert fetcher.prefetched >= 1
            assert fetcher(local / "es0-m0-d1.npz") is True
            assert fetcher.prefetch_hits == 1
            assert (local / "es0-m0-d1.npz").read_bytes() == second
        finally:
            fetcher.close()
            shutdown_worker(addr)
            try:
                proc.wait(timeout=10)
            except Exception:
                proc.kill()


# ----------------------------------------------------------------------
# Digest + stage-record invariance across the transport knob matrix
# ----------------------------------------------------------------------
class TestKnobMatrixInvariance:
    def _pipeline(self, ctx):
        data = np.arange(50_000, dtype=np.int64)

        def bump(cols, i):
            return tuple((c * 13 + i) % 7919 for c in cols)

        return (
            ctx.parallelize([data], n_partitions=6)
            .map_partitions(bump)
            .distinct()
            .collect()
        )

    @pytest.mark.parametrize("inflight", [1, 3])
    @pytest.mark.parametrize("codec", ["off", "zlib"])
    def test_matrix_matches_serial(
        self, cluster_daemons, monkeypatch, inflight, codec
    ):
        with ClusterContext(
            executor="serial", n_nodes=2, executor_cores=2
        ) as ctx:
            ref = digest(list(self._pipeline(ctx)))
            ref_stages = [
                (r.stage, r.partition, r.node, r.bytes_out)
                for r in ctx.metrics.tasks
            ]
        monkeypatch.setenv("REPRO_MAX_INFLIGHT", str(inflight))
        monkeypatch.setenv("REPRO_WIRE_CODEC", codec)
        monkeypatch.setenv("REPRO_FETCH_PREFETCH", "1")
        with ClusterContext(
            executor="cluster", n_nodes=2, executor_cores=2
        ) as ctx:
            got = digest(list(self._pipeline(ctx)))
            got_stages = [
                (r.stage, r.partition, r.node, r.bytes_out)
                for r in ctx.metrics.tasks
            ]
            profile = ctx.executor.transport
            assert profile.network_bytes > 0
            assert profile.network_raw_bytes >= profile.network_bytes
        assert got == ref
        assert got_stages == ref_stages
