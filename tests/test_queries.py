"""Tests for the cyber-security query workloads."""

import numpy as np
import pytest

from repro.graph import PropertyGraph
from repro.queries import (
    EdgeFilter,
    QueryWorkload,
    degree_top_k,
    fan_in_motif,
    fan_out_motif,
    filter_edges,
    host_pair_aggregate,
    k_hop_neighborhood,
    neighbors,
    reachable_within,
    shortest_path_length,
    vertex_by_host_id,
)


def chain_graph():
    """0 -> 1 -> 2 -> 3, plus 0 -> 2 shortcut."""
    return PropertyGraph(
        4, np.array([0, 1, 2, 0]), np.array([1, 2, 3, 2])
    )


class TestNodeQueries:
    def test_vertex_by_host_id(self, seed_graph):
        ids = seed_graph.vertex_properties["ID"]
        assert vertex_by_host_id(seed_graph, int(ids[3])) == 3
        assert vertex_by_host_id(seed_graph, -99) is None

    def test_vertex_by_host_id_without_ids(self):
        g = chain_graph()
        assert vertex_by_host_id(g, 2) == 2
        assert vertex_by_host_id(g, 9) is None

    def test_degree_top_k_order(self):
        g = PropertyGraph(
            4, np.array([0, 1, 2, 3, 1, 2]), np.array([1, 0, 1, 1, 3, 3])
        )
        top = degree_top_k(g, 2)
        deg = g.degrees()
        assert deg[top[0]] >= deg[top[1]]
        assert top[0] == int(np.argmax(deg))

    def test_degree_top_k_kinds(self, seed_graph):
        assert degree_top_k(seed_graph, 5, kind="in").size == 5
        assert degree_top_k(seed_graph, 5, kind="out").size == 5
        with pytest.raises(ValueError):
            degree_top_k(seed_graph, 5, kind="sideways")
        with pytest.raises(ValueError):
            degree_top_k(seed_graph, 0)

    def test_neighbors_directions(self):
        g = chain_graph()
        assert neighbors(g, 2, direction="out").tolist() == [3]
        assert sorted(neighbors(g, 2, direction="in").tolist()) == [0, 1]
        assert sorted(neighbors(g, 2, direction="both").tolist()) == [0, 1, 3]
        with pytest.raises(ValueError):
            neighbors(g, 99)


class TestEdgeQueries:
    def test_equals_filter(self, seed_graph):
        flt = EdgeFilter(equals={"PROTOCOL": 6})
        sub = filter_edges(seed_graph, flt)
        assert (sub.edge_properties["PROTOCOL"] == 6).all()
        assert sub.n_edges < seed_graph.n_edges

    def test_range_filter(self, seed_graph):
        flt = EdgeFilter(ranges={"OUT_BYTES": (100, 10_000)})
        sub = filter_edges(seed_graph, flt)
        ob = sub.edge_properties["OUT_BYTES"]
        assert (ob >= 100).all() and (ob <= 10_000).all()

    def test_open_ended_range(self, seed_graph):
        flt = EdgeFilter(ranges={"DURATION": (None, 1e12)})
        assert filter_edges(seed_graph, flt).n_edges == seed_graph.n_edges

    def test_conjunction(self, seed_graph):
        flt = EdgeFilter(
            equals={"PROTOCOL": 6},
            ranges={"IN_BYTES": (1, None)},
        )
        sub = filter_edges(seed_graph, flt)
        assert (sub.edge_properties["PROTOCOL"] == 6).all()
        assert (sub.edge_properties["IN_BYTES"] >= 1).all()

    def test_unknown_attribute(self, seed_graph):
        with pytest.raises(KeyError):
            filter_edges(seed_graph, EdgeFilter(equals={"NOPE": 1}))


class TestPathQueries:
    def test_k_hop_expansion(self):
        g = chain_graph()
        assert k_hop_neighborhood(g, 0, 0).tolist() == [0]
        assert sorted(k_hop_neighborhood(g, 0, 1).tolist()) == [0, 1, 2]
        assert sorted(k_hop_neighborhood(g, 0, 2).tolist()) == [0, 1, 2, 3]

    def test_shortest_path(self):
        g = chain_graph()
        assert shortest_path_length(g, 0, 0) == 0
        assert shortest_path_length(g, 0, 2) == 1  # via shortcut
        assert shortest_path_length(g, 0, 3) == 2
        assert shortest_path_length(g, 3, 0) is None  # directed

    def test_reachable_within(self):
        g = chain_graph()
        r = reachable_within(g, 1)
        assert r.tolist() == [False, True, True, True]
        r1 = reachable_within(g, 1, max_hops=1)
        assert r1.tolist() == [False, True, True, False]

    def test_validation(self):
        g = chain_graph()
        with pytest.raises(ValueError):
            k_hop_neighborhood(g, 99, 1)
        with pytest.raises(ValueError):
            k_hop_neighborhood(g, 0, -1)
        with pytest.raises(ValueError):
            shortest_path_length(g, 0, 99)

    def test_matches_networkx(self, seed_graph):
        import networkx as nx

        nxg = nx.DiGraph()
        nxg.add_nodes_from(range(seed_graph.n_vertices))
        s, d = seed_graph.distinct_edge_pairs()
        nxg.add_edges_from(zip(s.tolist(), d.tolist()))
        src = int(degree_top_k(seed_graph, 1, kind="out")[0])
        lengths = nx.single_source_shortest_path_length(nxg, src)
        for target in list(lengths)[:20]:
            assert shortest_path_length(seed_graph, src, target) == (
                lengths[target]
            )


class TestSubgraphQueries:
    def test_fan_out_detects_scanner(self):
        # vertex 0 contacts 1..10; others quiet.
        src = np.zeros(10, dtype=np.int64)
        dst = np.arange(1, 11, dtype=np.int64)
        g = PropertyGraph(11, src, dst)
        assert fan_out_motif(g, 10).tolist() == [0]
        assert fan_out_motif(g, 11).size == 0

    def test_fan_in_detects_convergence(self):
        src = np.arange(1, 9, dtype=np.int64)
        dst = np.zeros(8, dtype=np.int64)
        g = PropertyGraph(9, src, dst)
        assert fan_in_motif(g, 8).tolist() == [0]

    def test_motifs_use_distinct_peers(self):
        # 20 parallel edges to one destination is NOT a fan-out.
        src = np.zeros(20, dtype=np.int64)
        dst = np.ones(20, dtype=np.int64)
        g = PropertyGraph(2, src, dst)
        assert fan_out_motif(g, 2).size == 0

    def test_pair_aggregate(self, seed_graph):
        agg = host_pair_aggregate(seed_graph)
        assert agg.n_flows.sum() == seed_graph.n_edges
        total = (
            seed_graph.edge_properties["OUT_BYTES"].sum()
            + seed_graph.edge_properties["IN_BYTES"].sum()
        )
        assert agg.total_bytes.sum() == total
        assert len(agg) == seed_graph.simple_graph().n_edges

    def test_pair_aggregate_requires_attributes(self):
        with pytest.raises(KeyError):
            host_pair_aggregate(chain_graph())

    def test_motif_validation(self):
        g = chain_graph()
        with pytest.raises(ValueError):
            fan_out_motif(g, 0)
        with pytest.raises(ValueError):
            fan_in_motif(g, 0)


class TestWorkload:
    def test_runs_all_families(self, seed_graph):
        report = QueryWorkload(n_queries=5, seed=1).run(seed_graph)
        assert set(report.seconds_by_family) == {
            "node", "edge", "path", "subgraph"
        }
        assert report.total_seconds > 0
        qps = report.queries_per_second()
        assert all(v > 0 for v in qps.values())

    def test_empty_graph_rejected(self):
        with pytest.raises(ValueError):
            QueryWorkload().run(PropertyGraph.empty())

    def test_validation(self):
        with pytest.raises(ValueError):
            QueryWorkload(n_queries=0)
        with pytest.raises(ValueError):
            QueryWorkload(k_hops=-1)

    def test_works_without_properties(self):
        g = chain_graph()
        report = QueryWorkload(n_queries=2, seed=1).run(g)
        assert report.n_edges == 4
