"""BTER — block two-level Erdős–Rényi (Seshadhri, Kolda & Pinar 2012).

Captures a target degree distribution *and* community clustering: vertices
group into affinity blocks of like degree, phase 1 wires dense ER graphs
inside each block, phase 2 adds Chung–Lu "excess degree" edges across
blocks.  §II cites it as the modern model "for the study of the community
structure".  This implementation follows the two-phase construction with
the standard simplifications (block of degree-d vertices has size d+1,
intra-block connectivity decays with degree).
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import BaselineGenerator

__all__ = ["BTER"]


class BTER(BaselineGenerator):
    """Two-level ER/CL generator driven by the seed degree distribution."""

    name = "BTER"

    def __init__(self, *, intra_weight: float = 0.5, seed: int = 0) -> None:
        super().__init__(seed=seed)
        if not 0.0 <= intra_weight <= 1.0:
            raise ValueError("intra_weight must lie in [0, 1]")
        self.intra_weight = intra_weight

    def edges(self, n_vertices, n_edges, rng, analysis):
        if analysis is None:
            raise ValueError("BTER requires a seed analysis")
        # Target total degrees per vertex, sorted ascending so consecutive
        # vertices form affinity blocks of like degree.
        degrees = np.sort(
            analysis.in_degree.sample(n_vertices, rng)
            + analysis.out_degree.sample(n_vertices, rng)
        ).astype(np.int64)
        degrees = np.maximum(degrees, 1)

        n_intra = int(round(self.intra_weight * n_edges))
        n_cross = n_edges - n_intra

        # ---- phase 1: dense ER inside blocks of size (degree + 1) -------
        src_parts, dst_parts = [], []
        intra_left = n_intra
        pos = 0
        blocks = []
        while pos < n_vertices:
            d = int(degrees[pos])
            size = min(d + 1, n_vertices - pos)
            blocks.append((pos, size))
            pos += size
        # Allocate intra edges to blocks proportionally to size*(size-1).
        weights = np.asarray(
            [s * max(s - 1, 0) for _, s in blocks], dtype=np.float64
        )
        if weights.sum() > 0 and intra_left > 0:
            alloc = rng.multinomial(intra_left, weights / weights.sum())
            for (start, size), m in zip(blocks, alloc):
                if m == 0 or size < 2:
                    continue
                src_parts.append(start + rng.integers(0, size, size=m))
                dst_parts.append(start + rng.integers(0, size, size=m))

        # ---- phase 2: Chung-Lu across blocks with the full weights ------
        if n_cross > 0:
            w = degrees.astype(np.float64)
            cdf = np.cumsum(w / w.sum())
            src_parts.append(
                np.searchsorted(cdf, rng.random(n_cross), side="right")
            )
            dst_parts.append(
                np.searchsorted(cdf, rng.random(n_cross), side="right")
            )

        if src_parts:
            src = np.clip(np.concatenate(src_parts), 0, n_vertices - 1)
            dst = np.clip(np.concatenate(dst_parts), 0, n_vertices - 1)
        else:
            src = np.empty(0, np.int64)
            dst = np.empty(0, np.int64)
        return n_vertices, src, dst
