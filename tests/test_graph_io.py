"""Unit tests for repro.graph.io edge-list persistence."""

import numpy as np
import pytest

from repro.graph import PropertyGraph
from repro.graph.io import read_edge_list, write_edge_list


def make_graph():
    return PropertyGraph(
        4,
        np.array([0, 1, 2, 2]),
        np.array([1, 2, 3, 3]),
        edge_properties={
            "BYTES": np.array([10, 20, 30, 40], dtype=np.int64),
            "DUR": np.array([0.5, 1.25, 2.0, 0.0]),
        },
    )


class TestRoundTrip:
    def test_structure(self, tmp_path):
        g = make_graph()
        p = tmp_path / "edges.tsv"
        write_edge_list(g, p)
        back = read_edge_list(p)
        assert back.n_vertices == 4
        assert np.array_equal(back.src, g.src)
        assert np.array_equal(back.dst, g.dst)

    def test_int_property_dtype_recovered(self, tmp_path):
        p = tmp_path / "edges.tsv"
        write_edge_list(make_graph(), p)
        back = read_edge_list(p)
        assert back.edge_properties["BYTES"].dtype == np.int64
        assert back.edge_properties["BYTES"].tolist() == [10, 20, 30, 40]

    def test_float_property_recovered(self, tmp_path):
        p = tmp_path / "edges.tsv"
        write_edge_list(make_graph(), p)
        back = read_edge_list(p)
        assert back.edge_properties["DUR"].dtype == np.float64
        assert np.allclose(
            back.edge_properties["DUR"], [0.5, 1.25, 2.0, 0.0]
        )

    def test_empty_graph(self, tmp_path):
        g = PropertyGraph(3, np.empty(0, np.int64), np.empty(0, np.int64))
        p = tmp_path / "empty.tsv"
        write_edge_list(g, p)
        back = read_edge_list(p)
        assert back.n_vertices == 3
        assert back.n_edges == 0

    def test_isolated_vertices_preserved(self, tmp_path):
        g = PropertyGraph(10, np.array([0]), np.array([1]))
        p = tmp_path / "iso.tsv"
        write_edge_list(g, p)
        assert read_edge_list(p).n_vertices == 10


class TestErrors:
    def test_wrong_header_rejected(self, tmp_path):
        p = tmp_path / "bad.tsv"
        p.write_text("not an edge list\n")
        with pytest.raises(ValueError, match="not a repro edge list"):
            read_edge_list(p)

    def test_missing_nvertices_rejected(self, tmp_path):
        p = tmp_path / "bad.tsv"
        p.write_text("# repro-edge-list v1\n# bogus\n")
        with pytest.raises(ValueError, match="n_vertices"):
            read_edge_list(p)


def test_large_roundtrip_chunked(tmp_path):
    """Exercise the chunked writer across a chunk boundary."""
    rng = np.random.default_rng(0)
    n = 70_000  # > one 65536 chunk
    g = PropertyGraph.from_edge_list(
        rng.integers(0, 1000, n), rng.integers(0, 1000, n),
        n_vertices=1000,
        edge_properties={"W": rng.integers(0, 100, n)},
    )
    p = tmp_path / "big.tsv"
    write_edge_list(g, p)
    back = read_edge_list(p)
    assert back.n_edges == n
    assert np.array_equal(back.edge_properties["W"], g.edge_properties["W"])
