"""Pluggable block codecs: how partition columns become bytes on disk.

The BlockStore historically serialized every spilled partition as a raw
uncompressed ``.npz``.  At the paper's Fig. 9 scales (10^8+ edges) the
spill traffic dominates the disk budget, so the codec behind block files
is now pluggable:

* ``raw``  — the legacy uncompressed ``.npz`` (``np.savez``/``np.load``);
  bit-exact, zero codec overhead, no streaming append.
* ``zlib`` — the RBLK chunk-compressed columnar container with
  DEFLATE (level 1) payload chunks; streams both ways.
* ``lzma`` — RBLK with LZMA (preset 0) chunks; better ratio, slower.
* ``mmap`` — RBLK with *uncompressed* chunks; whole-array reads of
  read-only reloads come back as ``np.memmap`` views when the array's
  chunks are contiguous in the file, so a reload costs page-cache
  faults instead of an up-front copy.

RBLK container layout (``.blk``)::

    [chunk payload bytes ...]          # appended as they are produced
    [JSON footer, utf-8]               # see below
    [footer length, 8-byte little-endian]
    [magic b"RBLK01"]

The footer maps each array name to its dtype (``np.lib.format`` descr,
so byte order and structured dtypes round-trip), its shape, and a chunk
list of ``[file_offset, compressed_len, raw_len]`` triples.  Payload
first / footer last makes the format *streaming-append friendly*: a
chunked writer emits compressed chunks as tasks produce rows and only
assembles metadata at close.  Readers seek to the tail, verify the
magic, and load the footer — no codec object needed; block files are
self-describing and are always dispatched on extension + footer, never
on the session's active codec (a reduce task can read segments written
under any codec).

Bit-exactness: every codec stores the exact bytes of the C-contiguous
array (``zlib``/``lzma`` are lossless), so spill-and-reload returns
byte-identical columns and the engine's cross-backend digest guarantee
is codec-independent.
"""

from __future__ import annotations

import json
import lzma
import math
import os
import threading
import time
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterator, Sequence

import numpy as np

Columns = Sequence[np.ndarray]

BLOCK_CODEC_ENV_VAR = "REPRO_BLOCK_CODEC"
CODEC_CHUNK_BYTES_ENV_VAR = "REPRO_CODEC_CHUNK_BYTES"

DEFAULT_CODEC = "raw"
DEFAULT_CODEC_CHUNK_BYTES = 1 << 20  # 1 MiB of raw array bytes per chunk

_MAGIC = b"RBLK01"
_FOOTER_LEN_BYTES = 8
_TAIL_BYTES = _FOOTER_LEN_BYTES + len(_MAGIC)

__all__ = [
    "BLOCK_CODEC_ENV_VAR",
    "CODEC_CHUNK_BYTES_ENV_VAR",
    "CODECS",
    "DEFAULT_CODEC",
    "BlockCodec",
    "WriteInfo",
    "get_codec",
    "resolve_block_codec",
    "resolve_codec_chunk_bytes",
    "array_dtypes",
    "read_arrays",
    "read_block_file",
    "read_named_file",
    "iter_column_chunks",
    "set_missing_file_resolver",
]


def resolve_block_codec(value: "str | None" = None) -> str:
    """Resolve the codec name: explicit argument > env var > 'raw'."""

    if value is None:
        value = os.environ.get(BLOCK_CODEC_ENV_VAR)
        if value is None:
            return DEFAULT_CODEC
    name = str(value).strip().lower()
    if not name:
        return DEFAULT_CODEC
    if name not in CODECS:
        names = ", ".join(sorted(CODECS))
        raise ValueError(
            f"unknown block codec {name!r}; expected one of: {names}"
        )
    return name


def resolve_codec_chunk_bytes(value: "int | str | None" = None) -> int:
    """Resolve the raw-bytes-per-chunk target for RBLK payload chunks."""

    if value is None:
        env = os.environ.get(CODEC_CHUNK_BYTES_ENV_VAR)
        if not env:
            return DEFAULT_CODEC_CHUNK_BYTES
        value = env
    if isinstance(value, str):
        from repro.engine.storage.blocks import parse_size

        value = parse_size(value)
    chunk = int(value)
    if chunk <= 0:
        raise ValueError(f"codec chunk bytes must be > 0, got {chunk}")
    return chunk


@dataclass(frozen=True)
class WriteInfo:
    """What a codec write reports back for storage accounting."""

    path: str
    rows: int
    n_columns: int
    logical_bytes: int  # sum of array .nbytes (pre-codec)
    disk_bytes: int  # actual file size on disk (post-codec)
    seconds: float  # encode time, compression + file writes


def _atomic_tmp(path: str) -> str:
    """Temp name unique per process *and* thread (speculative duplicates)."""

    return f"{path}.tmp.{os.getpid()}.{threading.get_ident()}"


def _as_contiguous(arr: np.ndarray) -> np.ndarray:
    """C-contiguous view/copy that — unlike ascontiguousarray — keeps 0-d."""

    arr = np.asarray(arr)
    if arr.ndim and not arr.flags["C_CONTIGUOUS"]:
        arr = np.ascontiguousarray(arr)
    return arr


# ---------------------------------------------------------------------------
# RBLK container: low-level writer / reader
# ---------------------------------------------------------------------------


def _compress(compression: str, data: bytes) -> bytes:
    if compression == "zlib":
        return zlib.compress(data, 1)
    if compression == "lzma":
        return lzma.compress(data, preset=0)
    return data


def _decompress(compression: str, payload: bytes, raw_len: int) -> bytes:
    if compression == "zlib":
        data = zlib.decompress(payload)
    elif compression == "lzma":
        data = lzma.decompress(payload)
    else:
        data = payload
    if len(data) != raw_len:
        raise ValueError(
            f"corrupt block chunk: expected {raw_len} raw bytes, "
            f"got {len(data)}"
        )
    return data


class _RblkWriter:
    """Appends payload chunks to a temp file; footer + rename at close."""

    def __init__(self, path: str, compression: str, chunk_bytes: int):
        self._final_path = path
        self._tmp = _atomic_tmp(path)
        self._fh = open(self._tmp, "wb")
        self._offset = 0
        self._compression = compression
        self._chunk_bytes = chunk_bytes
        self._arrays: "dict[str, dict]" = {}
        self._order: "list[str]" = []
        self._logical = 0
        self._seconds = 0.0
        self._closed = False

    def _meta_for(self, name: str, arr: np.ndarray, appendable: bool) -> dict:
        meta = self._arrays.get(name)
        if meta is None:
            meta = {
                "descr": np.lib.format.dtype_to_descr(arr.dtype),
                "shape": None,
                "chunks": [],
                "_rows": 0,
                "_trailing": tuple(arr.shape[1:]) if appendable else None,
            }
            self._arrays[name] = meta
            self._order.append(name)
        return meta

    def _write_chunk(self, meta: dict, data: bytes) -> None:
        t0 = time.perf_counter()
        payload = _compress(self._compression, data)
        self._fh.write(payload)
        self._seconds += time.perf_counter() - t0
        meta["chunks"].append([self._offset, len(payload), len(data)])
        self._offset += len(payload)

    def put_array(self, name: str, arr: np.ndarray) -> None:
        """Write a whole array, split internally into chunk_bytes chunks."""

        arr = _as_contiguous(arr)
        meta = self._meta_for(name, arr, appendable=False)
        if meta["shape"] is not None:
            raise ValueError(f"array {name!r} already written")
        meta["shape"] = list(arr.shape)
        self._logical += int(arr.nbytes)
        flat = arr.reshape(-1)
        itemsize = max(arr.dtype.itemsize, 1)
        step = max(self._chunk_bytes // itemsize, 1)
        for start in range(0, flat.size, step):
            self._write_chunk(meta, flat[start : start + step].tobytes())

    def append_rows(self, name: str, chunk: np.ndarray) -> None:
        """Append rows along axis 0; one call is one payload chunk.

        The caller controls chunk boundaries, so parallel arrays that are
        appended together stay row-aligned chunk for chunk — the k-way
        merge in the external sort zips their chunk iterators.
        """

        chunk = _as_contiguous(chunk)
        meta = self._meta_for(name, chunk, appendable=True)
        if meta["_trailing"] is None or meta["shape"] is not None:
            raise ValueError(f"array {name!r} is not appendable")
        if tuple(chunk.shape[1:]) != meta["_trailing"]:
            raise ValueError(
                f"array {name!r}: trailing dims {chunk.shape[1:]} != "
                f"{meta['_trailing']}"
            )
        meta["_rows"] += int(chunk.shape[0]) if chunk.ndim else 0
        self._logical += int(chunk.nbytes)
        if chunk.size:
            self._write_chunk(meta, chunk.tobytes())

    def close(self, *, rows: int, n_columns: int) -> WriteInfo:
        if self._closed:
            raise ValueError("writer already closed")
        self._closed = True
        try:
            footer_arrays = []
            for name in self._order:
                meta = self._arrays[name]
                shape = meta["shape"]
                if shape is None:  # appendable array: finalize its shape
                    shape = [meta["_rows"], *meta["_trailing"]]
                footer_arrays.append(
                    {
                        "name": name,
                        "descr": meta["descr"],
                        "shape": shape,
                        "chunks": meta["chunks"],
                    }
                )
            footer = json.dumps(
                {"compression": self._compression, "arrays": footer_arrays}
            ).encode("utf-8")
            self._fh.write(footer)
            self._fh.write(len(footer).to_bytes(_FOOTER_LEN_BYTES, "little"))
            self._fh.write(_MAGIC)
            self._fh.close()
            os.replace(self._tmp, self._final_path)
        except BaseException:
            self.abort()
            raise
        return WriteInfo(
            path=self._final_path,
            rows=rows,
            n_columns=n_columns,
            logical_bytes=self._logical,
            disk_bytes=int(os.path.getsize(self._final_path)),
            seconds=self._seconds,
        )

    def abort(self) -> None:
        self._closed = True
        try:
            self._fh.close()
        except OSError:
            pass
        try:
            os.unlink(self._tmp)
        except OSError:
            pass


def _read_rblk_footer(fh) -> dict:
    fh.seek(-_TAIL_BYTES, os.SEEK_END)
    tail = fh.read(_TAIL_BYTES)
    if len(tail) != _TAIL_BYTES or tail[-len(_MAGIC) :] != _MAGIC:
        raise ValueError("not an RBLK block file (bad magic)")
    footer_len = int.from_bytes(tail[:_FOOTER_LEN_BYTES], "little")
    fh.seek(-(_TAIL_BYTES + footer_len), os.SEEK_END)
    return json.loads(fh.read(footer_len).decode("utf-8"))


def _contiguous_span(chunks: "list[list[int]]") -> "int | None":
    """First-chunk offset if uncompressed chunks are back to back."""

    offset = chunks[0][0]
    expect = offset
    for off, clen, rlen in chunks:
        if off != expect or clen != rlen:
            return None
        expect = off + clen
    return offset


def _decode_array(fh, meta: dict, compression: str) -> np.ndarray:
    dtype = np.lib.format.descr_to_dtype(meta["descr"])
    shape = tuple(meta["shape"])
    buf = bytearray()
    for off, clen, rlen in meta["chunks"]:
        fh.seek(off)
        buf += _decompress(compression, fh.read(clen), rlen)
    if dtype.itemsize and len(buf):
        arr = np.frombuffer(buf, dtype=dtype)
    else:
        arr = np.empty(math.prod(shape), dtype=dtype)
    return arr.reshape(shape)


def _mmap_array(path: str, meta: dict) -> "np.ndarray | None":
    """Memory-mapped view of an uncompressed contiguous array, or None."""

    dtype = np.lib.format.descr_to_dtype(meta["descr"])
    shape = tuple(meta["shape"])
    count = math.prod(shape)
    if count == 0 or dtype.itemsize == 0 or not meta["chunks"]:
        return None
    offset = _contiguous_span(meta["chunks"])
    if offset is None:
        return None
    view = np.memmap(path, dtype=dtype, mode="r", offset=offset, shape=(count,))
    return view.reshape(shape)


def _read_rblk(path: str, *, allow_mmap: bool) -> "dict[str, np.ndarray]":
    with open(path, "rb") as fh:
        footer = _read_rblk_footer(fh)
        compression = footer["compression"]
        out: "dict[str, np.ndarray]" = {}
        for meta in footer["arrays"]:
            arr = None
            if allow_mmap and compression == "none":
                arr = _mmap_array(path, meta)
            if arr is None:
                arr = _decode_array(fh, meta, compression)
            out[meta["name"]] = arr
    return out


def _iter_rblk_column(path: str, name: str) -> Iterator[np.ndarray]:
    """Stream one array's chunks without loading the rest of the file."""

    with open(path, "rb") as fh:
        footer = _read_rblk_footer(fh)
        compression = footer["compression"]
        for meta in footer["arrays"]:
            if meta["name"] != name:
                continue
            dtype = np.lib.format.descr_to_dtype(meta["descr"])
            trailing = tuple(meta["shape"][1:])
            for off, clen, rlen in meta["chunks"]:
                fh.seek(off)
                data = _decompress(compression, fh.read(clen), rlen)
                arr = np.frombuffer(bytearray(data), dtype=dtype)
                if trailing:
                    arr = arr.reshape((-1, *trailing))
                yield arr
            return
    raise KeyError(f"no array named {name!r} in {path}")


# ---------------------------------------------------------------------------
# Codec classes
# ---------------------------------------------------------------------------


class _RawChunkedWriter:
    """Chunked writer for the raw codec: buffers, concatenates, savez.

    ``.npz`` cannot be appended to, so the raw codec's streaming writer
    is *not* memory-bounded — it exists so streaming emission works
    uniformly under every codec; pick ``zlib`` or ``mmap`` when the
    bound matters (DESIGN.md §10).
    """

    def __init__(self, codec: "RawNpzCodec", path: str):
        self._codec = codec
        self._path = path
        self._chunks: "list[tuple[np.ndarray, ...]]" = []
        self._closed = False

    def append_columns(self, columns: Columns) -> None:
        self._chunks.append(tuple(_as_contiguous(c) for c in columns))

    def close(self) -> WriteInfo:
        if self._closed:
            raise ValueError("writer already closed")
        self._closed = True
        if not self._chunks:
            return self._codec.write(self._path, ())
        n_columns = len(self._chunks[0])
        columns = tuple(
            np.concatenate([chunk[j] for chunk in self._chunks])
            if len(self._chunks) > 1
            else self._chunks[0][j]
            for j in range(n_columns)
        )
        return self._codec.write(self._path, columns)

    def abort(self) -> None:
        self._closed = True
        self._chunks = []


class _RblkChunkedWriter:
    """Chunked writer for RBLK codecs: every append streams to disk."""

    def __init__(self, writer: _RblkWriter):
        self._writer = writer
        self._rows = 0
        self._n_columns = 0

    def append_columns(self, columns: Columns) -> None:
        columns = tuple(columns)
        self._n_columns = max(self._n_columns, len(columns))
        if columns:
            self._rows += int(columns[0].shape[0])
        for j, col in enumerate(columns):
            self._writer.append_rows(f"c{j}", col)

    def close(self) -> WriteInfo:
        return self._writer.close(rows=self._rows, n_columns=self._n_columns)

    def abort(self) -> None:
        self._writer.abort()


class BlockCodec:
    """One way of turning named arrays into a self-describing block file."""

    name: str = "?"
    extension: str = "?"
    compression: str = "none"  # RBLK payload compression

    def __init__(self, chunk_bytes: "int | None" = None):
        self.chunk_bytes = (
            resolve_codec_chunk_bytes(chunk_bytes)
            if chunk_bytes is not None
            else None
        )

    def _resolved_chunk_bytes(self) -> int:
        if self.chunk_bytes is not None:
            return self.chunk_bytes
        return resolve_codec_chunk_bytes()

    # -- whole-file writes -------------------------------------------

    def write_named(
        self, path: str, named: "dict[str, np.ndarray]"
    ) -> WriteInfo:
        writer = _RblkWriter(
            path, self.compression, self._resolved_chunk_bytes()
        )
        try:
            for name, arr in named.items():
                writer.put_array(name, arr)
        except BaseException:
            writer.abort()
            raise
        first = next(iter(named.values()), None)
        rows = int(first.shape[0]) if first is not None and first.ndim else 0
        return writer.close(rows=rows, n_columns=len(named))

    def write(self, path: str, columns: Columns) -> WriteInfo:
        named = {
            f"c{j}": _as_contiguous(col)
            for j, col in enumerate(columns)
        }
        return self.write_named(path, named)

    # -- streaming writes --------------------------------------------

    def open_writer(self, path: str):
        """A chunked writer: append_columns(chunk_cols)* then close()."""

        return _RblkChunkedWriter(
            _RblkWriter(path, self.compression, self._resolved_chunk_bytes())
        )


class RawNpzCodec(BlockCodec):
    """The legacy format: one uncompressed ``.npz`` per block."""

    name = "raw"
    extension = ".npz"

    def write_named(
        self, path: str, named: "dict[str, np.ndarray]"
    ) -> WriteInfo:
        named = {k: _as_contiguous(v) for k, v in named.items()}
        t0 = time.perf_counter()
        tmp = _atomic_tmp(path)
        try:
            with open(tmp, "wb") as handle:
                np.savez(handle, **named)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        seconds = time.perf_counter() - t0
        first = next(iter(named.values()), None)
        return WriteInfo(
            path=path,
            rows=int(first.shape[0]) if first is not None and first.ndim else 0,
            n_columns=len(named),
            logical_bytes=int(sum(arr.nbytes for arr in named.values())),
            disk_bytes=int(os.path.getsize(path)),
            seconds=seconds,
        )

    def open_writer(self, path: str):
        return _RawChunkedWriter(self, path)


class ZlibCodec(BlockCodec):
    """RBLK with DEFLATE level-1 chunks: fast, ~2-4x on edge columns."""

    name = "zlib"
    extension = ".blk"
    compression = "zlib"


class LzmaCodec(BlockCodec):
    """RBLK with LZMA preset-0 chunks: denser, several times slower."""

    name = "lzma"
    extension = ".blk"
    compression = "lzma"


class MmapCodec(BlockCodec):
    """RBLK with uncompressed chunks; reloads memory-map when contiguous."""

    name = "mmap"
    extension = ".blk"
    compression = "none"


CODECS: "dict[str, type[BlockCodec]]" = {
    cls.name: cls for cls in (RawNpzCodec, ZlibCodec, LzmaCodec, MmapCodec)
}

_INSTANCES: "dict[str, BlockCodec]" = {}


def get_codec(name: "str | None" = None) -> BlockCodec:
    """Resolve + instantiate a codec (instances are stateless, cached)."""

    resolved = resolve_block_codec(name)
    codec = _INSTANCES.get(resolved)
    if codec is None:
        codec = CODECS[resolved]()
        _INSTANCES[resolved] = codec
    return codec


# ---------------------------------------------------------------------------
# Reads: extension + footer dispatch, independent of the active codec
# ---------------------------------------------------------------------------

# Remote tier hook (the cluster backend's worker-to-worker block fetch):
# when a reader asks for a block file that is not on local disk and a
# resolver is installed, it gets one chance to materialise the file
# (e.g. by fetching the bytes from a peer worker daemon) before the
# read proceeds — and fails with the ordinary FileNotFoundError if the
# resolver could not produce it.  Process-global on purpose: it is
# installed once per driver/worker process by the cluster layer and
# inherited by forked task children.
_MISSING_FILE_RESOLVER: "Callable[[Path], bool] | None" = None


def set_missing_file_resolver(
    resolver: "Callable[[Path], bool] | None",
) -> "Callable[[Path], bool] | None":
    """Install (or clear, with ``None``) the missing-block resolver;
    returns the previous one so callers can restore it."""

    global _MISSING_FILE_RESOLVER
    previous = _MISSING_FILE_RESOLVER
    _MISSING_FILE_RESOLVER = resolver
    return previous


def _ensure_local(path: str) -> str:
    if _MISSING_FILE_RESOLVER is not None and not os.path.exists(path):
        _MISSING_FILE_RESOLVER(Path(path))
    return path


def read_named_file(path: str) -> "dict[str, np.ndarray]":
    """Load every array of a block file as a name -> array dict."""

    path = _ensure_local(path)
    if path.endswith(".npz"):
        with np.load(path) as archive:
            return {name: archive[name] for name in archive.files}
    return _read_rblk(path, allow_mmap=True)


def read_block_file(path: str) -> "tuple[np.ndarray, ...]":
    """Load a columnar block file's columns ``c0..cN`` in order."""

    named = read_named_file(path)
    return tuple(named[f"c{j}"] for j in range(len(named)))


def read_arrays(path: str, names: Sequence[str]) -> "list[np.ndarray]":
    """Load only the requested arrays (lazy member access, not the file).

    The exchange reduce uses this to pull one destination's slots out of
    every map segment without decoding the other destinations.
    """

    path = _ensure_local(path)
    if path.endswith(".npz"):
        with np.load(path) as archive:
            return [archive[name] for name in names]
    with open(path, "rb") as fh:
        footer = _read_rblk_footer(fh)
        compression = footer["compression"]
        metas = {meta["name"]: meta for meta in footer["arrays"]}
        out = []
        for name in names:
            meta = metas[name]
            arr = None
            if compression == "none":
                arr = _mmap_array(path, meta)
            if arr is None:
                arr = _decode_array(fh, meta, compression)
            out.append(arr)
    return out


def array_dtypes(path: str) -> "dict[str, np.dtype]":
    """Dtype of every array in a block file, from metadata when possible.

    RBLK answers from the footer alone; ``.npz`` has to load members
    (the raw codec is the non-streaming compatibility path).
    """

    path = _ensure_local(path)
    if path.endswith(".npz"):
        with np.load(path) as archive:
            return {name: archive[name].dtype for name in archive.files}
    with open(path, "rb") as fh:
        footer = _read_rblk_footer(fh)
    return {
        meta["name"]: np.lib.format.descr_to_dtype(meta["descr"])
        for meta in footer["arrays"]
    }


def iter_column_chunks(path: str, name: str) -> Iterator[np.ndarray]:
    """Stream one array chunk by chunk (whole array at once for .npz)."""

    path = _ensure_local(path)
    if path.endswith(".npz"):
        with np.load(path) as archive:
            yield archive[name]
        return
    yield from _iter_rblk_column(path, name)
