"""Detection-quality evaluation against injected ground truth.

A detection is a true positive when it names an IP involved in an attack
of a compatible kind: destination-based detections must hit a victim,
source-based ones an attacker.  Kind matching is lenient across flood
flavours (a ``ddos_syn_flood`` attack detected as ``syn_flood`` still
counts: the aggregation direction, not the label, is the hard part).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.detect.detector import Detection
from repro.trace.attacks import AttackGroundTruth

__all__ = ["DetectionReport", "evaluate_detections"]

# Attack kind -> detection kinds that count as a hit.
_COMPATIBLE = {
    "syn_flood": {"syn_flood", "ddos_syn_flood", "tcp_flood", "tcp_flood_source"},
    "ddos_syn_flood": {"ddos_syn_flood", "syn_flood", "tcp_flood"},
    "host_scan": {"host_scan"},
    "network_scan": {"network_scan"},
    "udp_flood": {"udp_flood", "udp_flood_source"},
    "icmp_flood": {"icmp_flood", "icmp_flood_source"},
    "tcp_flood": {"tcp_flood", "tcp_flood_source", "syn_flood"},
}


@dataclass(frozen=True)
class DetectionReport:
    """Precision / recall / F1 plus per-attack hit map."""

    true_positives: int
    false_positives: int
    false_negatives: int
    detected_attacks: tuple[str, ...]
    missed_attacks: tuple[str, ...]

    @property
    def precision(self) -> float:
        denom = self.true_positives + self.false_positives
        return self.true_positives / denom if denom else 1.0

    @property
    def recall(self) -> float:
        denom = self.true_positives + self.false_negatives
        return self.true_positives / denom if denom else 1.0

    @property
    def f1(self) -> float:
        p, r = self.precision, self.recall
        return 2 * p * r / (p + r) if (p + r) else 0.0


def _matches(det: Detection, attack: AttackGroundTruth) -> bool:
    kinds = _COMPATIBLE.get(attack.kind, {attack.kind})
    if det.kind not in kinds:
        return False
    if det.direction == "destination":
        return det.ip in attack.victim_ips
    return det.ip in attack.attacker_ips


def evaluate_detections(
    detections: list[Detection],
    attacks: list[AttackGroundTruth],
) -> DetectionReport:
    """Score a detection run.

    Each attack counts once: detected (>=1 matching detection) or missed.
    Detections matching no attack are false positives.  Multiple matching
    detections for the same attack are collapsed (they are corroboration,
    not extra credit, and must not inflate precision).
    """
    matched_attack = [False] * len(attacks)
    fp = 0
    for det in detections:
        hit = False
        for idx, attack in enumerate(attacks):
            if _matches(det, attack):
                matched_attack[idx] = True
                hit = True
        if not hit:
            fp += 1
    tp = sum(matched_attack)
    fn = len(attacks) - tp
    return DetectionReport(
        true_positives=tp,
        false_positives=fp,
        false_negatives=fn,
        detected_attacks=tuple(
            a.kind for a, m in zip(attacks, matched_attack) if m
        ),
        missed_attacks=tuple(
            a.kind for a, m in zip(attacks, matched_attack) if not m
        ),
    )
