"""Unit tests for repro.stats.empirical."""

import numpy as np
import pytest

from repro.stats import EmpiricalDistribution


class TestConstruction:
    def test_from_samples_aggregates_ties(self):
        d = EmpiricalDistribution.from_samples(np.array([1, 1, 2, 3, 3, 3]))
        assert d.values.tolist() == [1, 2, 3]
        assert np.allclose(d.probabilities, [2 / 6, 1 / 6, 3 / 6])

    def test_from_counts_normalises(self):
        d = EmpiricalDistribution.from_counts(
            np.array([5, 10]), np.array([3.0, 1.0])
        )
        assert np.allclose(d.probabilities, [0.75, 0.25])

    def test_from_counts_sorts_support(self):
        d = EmpiricalDistribution.from_counts(
            np.array([10, 5]), np.array([1.0, 1.0])
        )
        assert d.values.tolist() == [5, 10]

    def test_zero_probability_atoms_dropped(self):
        d = EmpiricalDistribution.from_counts(
            np.array([1, 2, 3]), np.array([1.0, 0.0, 1.0])
        )
        assert d.values.tolist() == [1, 3]

    def test_empty_samples_rejected(self):
        with pytest.raises(ValueError, match="zero samples"):
            EmpiricalDistribution.from_samples(np.array([]))

    def test_negative_counts_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            EmpiricalDistribution.from_counts(
                np.array([1, 2]), np.array([1.0, -1.0])
            )

    def test_all_zero_counts_rejected(self):
        with pytest.raises(ValueError, match="all be zero"):
            EmpiricalDistribution.from_counts(
                np.array([1]), np.array([0.0])
            )

    def test_mismatched_shapes_rejected(self):
        with pytest.raises(ValueError, match="matching 1-D"):
            EmpiricalDistribution.from_counts(
                np.array([1, 2]), np.array([1.0])
            )

    def test_degenerate(self):
        d = EmpiricalDistribution.degenerate(42)
        assert d.support_size == 1
        assert d.mean() == 42.0
        assert d.var() == 0.0


class TestQueries:
    @pytest.fixture
    def dist(self):
        return EmpiricalDistribution.from_counts(
            np.array([1, 2, 4]), np.array([1.0, 2.0, 1.0])
        )

    def test_pmf_on_support(self, dist):
        assert np.allclose(dist.pmf([1, 2, 4]), [0.25, 0.5, 0.25])

    def test_pmf_off_support(self, dist):
        assert np.allclose(dist.pmf([0, 3, 5]), [0.0, 0.0, 0.0])

    def test_cdf_monotone_and_bounded(self, dist):
        x = np.array([0, 1, 2, 3, 4, 5])
        c = dist.cdf(x)
        assert np.all(np.diff(c) >= 0)
        assert c[0] == 0.0
        assert c[-1] == 1.0

    def test_quantile_inverts_cdf(self, dist):
        assert dist.quantile([0.0])[0] == 1
        assert dist.quantile([0.25])[0] == 1
        assert dist.quantile([0.26])[0] == 2
        assert dist.quantile([1.0])[0] == 4

    def test_quantile_out_of_range_rejected(self, dist):
        with pytest.raises(ValueError, match="0, 1"):
            dist.quantile([1.5])

    def test_mean_var(self, dist):
        assert dist.mean() == pytest.approx(0.25 * 1 + 0.5 * 2 + 0.25 * 4)
        m = dist.mean()
        expected_var = 0.25 * (1 - m) ** 2 + 0.5 * (2 - m) ** 2 + 0.25 * (4 - m) ** 2
        assert dist.var() == pytest.approx(expected_var)

    def test_entropy_uniform_is_log_n(self):
        d = EmpiricalDistribution.from_counts(
            np.arange(8), np.ones(8)
        )
        assert d.entropy() == pytest.approx(np.log(8))

    def test_len(self, dist):
        assert len(dist) == 3


class TestSampling:
    def test_sample_stays_on_support(self, rng):
        d = EmpiricalDistribution.from_samples(np.array([2, 2, 7, 9]))
        s = d.sample(1000, rng)
        assert set(np.unique(s)) <= {2, 7, 9}

    def test_sample_frequencies_converge(self, rng):
        d = EmpiricalDistribution.from_counts(
            np.array([0, 1]), np.array([0.8, 0.2])
        )
        s = d.sample(200_000, rng)
        assert np.mean(s == 1) == pytest.approx(0.2, abs=0.01)

    def test_sample_zero(self, rng):
        d = EmpiricalDistribution.degenerate(1)
        assert d.sample(0, rng).size == 0

    def test_sample_negative_rejected(self, rng):
        d = EmpiricalDistribution.degenerate(1)
        with pytest.raises(ValueError):
            d.sample(-1, rng)

    def test_sample_preserves_dtype(self, rng):
        d = EmpiricalDistribution.from_samples(
            np.array([1, 2, 3], dtype=np.int64)
        )
        assert d.sample(10, rng).dtype == np.int64

    def test_sample_one(self, rng):
        d = EmpiricalDistribution.degenerate(5)
        assert d.sample_one(rng) == 5

    def test_deterministic_given_seed(self):
        d = EmpiricalDistribution.from_samples(np.arange(100))
        a = d.sample(50, np.random.default_rng(1))
        b = d.sample(50, np.random.default_rng(1))
        assert np.array_equal(a, b)


class TestTransforms:
    def test_truncated(self):
        d = EmpiricalDistribution.from_counts(
            np.array([1, 2, 3, 4]), np.ones(4)
        )
        t = d.truncated(low=2, high=3)
        assert t.values.tolist() == [2, 3]
        assert np.allclose(t.probabilities, [0.5, 0.5])

    def test_truncated_empty_rejected(self):
        d = EmpiricalDistribution.degenerate(1)
        with pytest.raises(ValueError, match="entire support"):
            d.truncated(low=10)

    def test_mixture_weights(self):
        a = EmpiricalDistribution.degenerate(0)
        b = EmpiricalDistribution.degenerate(1)
        m = a.mixed_with(b, 0.25)
        assert np.allclose(m.pmf([0, 1]), [0.75, 0.25])

    def test_mixture_merges_shared_atoms(self):
        a = EmpiricalDistribution.from_counts(
            np.array([0, 1]), np.array([0.5, 0.5])
        )
        m = a.mixed_with(a, 0.5)
        assert m.support_size == 2
        assert np.allclose(m.probabilities, [0.5, 0.5])

    def test_mixture_bad_weight(self):
        a = EmpiricalDistribution.degenerate(0)
        with pytest.raises(ValueError):
            a.mixed_with(a, 1.5)
