"""Erdős–Rényi G(n, m): edges drawn uniformly over ordered vertex pairs.

The oldest random-graph model (§II).  Its binomial degree distribution has
an exponentially decaying tail — "the probability of finding a highly
connected vertex decreases exponentially with the degree" — which is
exactly what disqualifies it as a network-trace generator and motivates
the scale-free models.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import BaselineGenerator

__all__ = ["ErdosRenyi"]


class ErdosRenyi(BaselineGenerator):
    """Directed G(n, m) multigraph (pairs drawn with replacement)."""

    name = "ER"

    def edges(self, n_vertices, n_edges, rng, analysis):
        src = rng.integers(0, n_vertices, size=n_edges)
        dst = rng.integers(0, n_vertices, size=n_edges)
        return n_vertices, src, dst
