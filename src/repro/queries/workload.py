"""Composable query workload runner.

A :class:`QueryWorkload` runs a configurable mix of the four query
families against a property graph, timing each family — the measurement an
IDS benchmark performs on a system under test once a dataset has been
generated.  Query targets (hosts, filters) are drawn deterministically
from a seeded RNG so runs are repeatable.

:meth:`QueryWorkload.run` executes the mix in-process through the
graph's memoized snapshot (adjacency and attribute indexes built once
per graph); :meth:`QueryWorkload.build_queries` emits the identical mix
as declarative :class:`~repro.serve.server.Query` objects for batched
execution through a :class:`~repro.serve.server.QueryServer`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.graph.property_graph import PropertyGraph
from repro.netflow.attributes import Protocol
from repro.queries.edge_queries import EdgeFilter, filter_edges
from repro.queries.node_queries import degree_top_k, neighbors
from repro.queries.path_queries import k_hop_neighborhood
from repro.queries.subgraph_queries import (
    fan_in_motif,
    fan_out_motif,
    host_pair_aggregate,
)

__all__ = ["QueryWorkload", "WorkloadReport"]

_WORKLOAD_PORTS = (22, 53, 80, 443)


@dataclass(frozen=True)
class WorkloadReport:
    """Per-family timing of one workload run.

    ``queries_by_family`` counts the queries actually issued per family;
    a family can be empty (e.g. the edge family on a graph without
    Netflow attributes), in which case its throughput reports ``0.0``
    and :meth:`summary` skips it.
    """

    n_edges: int
    queries_per_family: int
    seconds_by_family: dict
    queries_by_family: dict = field(default_factory=dict)

    @property
    def total_seconds(self) -> float:
        return float(sum(self.seconds_by_family.values()))

    def _count(self, family: str) -> int:
        return int(
            self.queries_by_family.get(family, self.queries_per_family)
        )

    def queries_per_second(self) -> dict:
        """Nominal per-family throughput; ``0.0`` for families that ran
        no queries (or whose elapsed time was unmeasurably small),
        never ``inf``."""
        return {
            family: (
                self.queries_per_family / secs
                if secs > 0 and self._count(family) > 0
                else 0.0
            )
            for family, secs in self.seconds_by_family.items()
        }

    def summary(self) -> str:
        """Printable per-family table; un-timed families are skipped."""
        qps = self.queries_per_second()
        lines = [
            f"{self.n_edges:,} edges, {self.queries_per_family} queries "
            f"per family, {self.total_seconds * 1e3:.2f} ms total"
        ]
        for family, secs in self.seconds_by_family.items():
            if self._count(family) == 0:
                continue
            lines.append(
                f"  {family:<9} {secs * 1e3:10.3f} ms  "
                f"{qps[family]:12,.0f} q/s"
            )
        return "\n".join(lines)


class QueryWorkload:
    """A deterministic mixed query workload.

    Parameters
    ----------
    n_queries:
        Queries issued per family.
    k_hops:
        Depth of the path queries.
    seed:
        RNG seed for target selection.
    """

    def __init__(
        self, *, n_queries: int = 20, k_hops: int = 2, seed: int = 0
    ) -> None:
        if n_queries < 1:
            raise ValueError("n_queries must be >= 1")
        if k_hops < 0:
            raise ValueError("k_hops must be non-negative")
        self.n_queries = n_queries
        self.k_hops = k_hops
        self.seed = seed

    # ------------------------------------------------------------------
    def _draw(self, graph) -> tuple[np.ndarray, np.ndarray, bool]:
        """Deterministic query targets: vertex targets, edge-filter
        ports, and whether the edge family applies."""
        if graph.n_vertices == 0 or graph.n_edges == 0:
            raise ValueError("workload needs a non-empty graph")
        rng = np.random.default_rng(self.seed)
        targets = rng.integers(0, graph.n_vertices, size=self.n_queries)
        has_props = "PROTOCOL" in graph.edge_properties
        ports = rng.choice(_WORKLOAD_PORTS, size=self.n_queries)
        return targets, ports, has_props

    @staticmethod
    def _edge_filter(port: int) -> EdgeFilter:
        return EdgeFilter(
            equals={"PROTOCOL": int(Protocol.TCP), "DEST_PORT": int(port)},
            ranges={"OUT_BYTES": (1, None)},
        )

    def run(self, graph: PropertyGraph) -> WorkloadReport:
        """Execute all four families and report per-family time.

        All queries route through ``graph.snapshot()``, so the CSR
        adjacency and attribute indexes are constructed exactly once
        per graph, not once per query."""
        targets, ports, has_props = self._draw(graph)
        snap = graph.snapshot()
        timings: dict[str, float] = {}
        counts: dict[str, int] = {}

        t0 = time.perf_counter()
        for v in targets:
            neighbors(snap, int(v), direction="both")
        degree_top_k(snap, 10)
        timings["node"] = time.perf_counter() - t0
        counts["node"] = self.n_queries + 1

        t0 = time.perf_counter()
        if has_props:
            for port in ports:
                filter_edges(snap, self._edge_filter(int(port)))
        timings["edge"] = time.perf_counter() - t0
        counts["edge"] = self.n_queries if has_props else 0

        t0 = time.perf_counter()
        for v in targets:
            k_hop_neighborhood(snap, int(v), self.k_hops)
        timings["path"] = time.perf_counter() - t0
        counts["path"] = self.n_queries

        t0 = time.perf_counter()
        fan_out_motif(snap, 10)
        fan_in_motif(snap, 10)
        if has_props:
            host_pair_aggregate(snap)
        timings["subgraph"] = time.perf_counter() - t0
        counts["subgraph"] = 3 if has_props else 2

        return WorkloadReport(
            n_edges=graph.n_edges,
            queries_per_family=self.n_queries,
            seconds_by_family=timings,
            queries_by_family=counts,
        )

    # ------------------------------------------------------------------
    def build_queries(self, graph, *, families=None) -> list:
        """The same deterministic mix as :meth:`run`, as declarative
        :class:`~repro.serve.server.Query` objects for a
        :class:`~repro.serve.server.QueryServer` batch.

        ``families`` optionally restricts the mix (iterable of family
        names); target draws are identical regardless of the subset.
        """
        from repro.serve.server import Query

        targets, ports, has_props = self._draw(graph)
        wanted = set(families) if families is not None else None

        def want(family: str) -> bool:
            return wanted is None or family in wanted

        batch: list[Query] = []
        if want("node"):
            batch.extend(
                Query.neighbors(int(v), direction="both") for v in targets
            )
            batch.append(Query.degree_top_k(10))
        if want("edge") and has_props:
            for port in ports:
                flt = self._edge_filter(int(port))
                batch.append(
                    Query.edge_filter(equals=flt.equals, ranges=flt.ranges)
                )
        if want("path"):
            batch.extend(
                Query.k_hop(int(v), self.k_hops) for v in targets
            )
        if want("subgraph"):
            batch.append(Query.fan_out(10))
            batch.append(Query.fan_in(10))
            if has_props:
                batch.append(Query.pair_aggregate())
        return batch
