"""Flow-table interchange: CSV text and binary Netflow-v5-style records.

CSV is the human-auditable format used by examples and tests; the binary
codec packs each flow into a fixed 64-byte record (inspired by Netflow v5
export datagrams) for compact storage of large tables.
"""

from __future__ import annotations

import struct
from pathlib import Path

import numpy as np

from repro.netflow.record import FlowTable

__all__ = ["write_csv", "read_csv", "write_binary", "read_binary"]

_CSV_HEADER = ",".join(FlowTable.COLUMN_NAMES)

# One flow = 14 fields; floats for START_TIME/DURATION, int64 elsewhere.
_BIN_MAGIC = b"RNF1"
_BIN_FMT = "<5q2d7q"  # SRC_IP DST_IP PROTOCOL SRC_PORT DEST_PORT | START DUR | rest
_BIN_RECORD_LEN = struct.calcsize(_BIN_FMT)
_BIN_ORDER = (
    "SRC_IP", "DST_IP", "PROTOCOL", "SRC_PORT", "DEST_PORT",
    "START_TIME", "DURATION",
    "OUT_BYTES", "IN_BYTES", "OUT_PKTS", "IN_PKTS", "STATE",
    "SYN_COUNT", "ACK_COUNT",
)


def write_csv(table: FlowTable, path) -> None:
    """Write the table with a header row; floats keep full precision."""
    path = Path(path)
    cols = [table[name] for name in FlowTable.COLUMN_NAMES]
    with path.open("w", encoding="utf-8") as fh:
        fh.write(_CSV_HEADER + "\n")
        if len(table) == 0:
            return
        stacked = np.stack([c.astype(str) for c in cols], axis=1)
        fh.write("\n".join(",".join(row) for row in stacked))
        fh.write("\n")


def read_csv(path) -> FlowTable:
    """Read a file produced by :func:`write_csv`."""
    path = Path(path)
    with path.open("r", encoding="utf-8") as fh:
        header = fh.readline().strip()
        if header != _CSV_HEADER:
            raise ValueError(f"unexpected flow CSV header in {path}")
        body = fh.read()
    if not body.strip():
        return FlowTable.empty()
    raw = np.genfromtxt(
        body.strip().splitlines(), delimiter=",", dtype=np.float64, ndmin=2
    )
    if raw.shape[1] != len(FlowTable.COLUMN_NAMES):
        raise ValueError("flow CSV column count mismatch")
    cols = {
        name: raw[:, j] for j, name in enumerate(FlowTable.COLUMN_NAMES)
    }
    return FlowTable(cols)


def write_binary(table: FlowTable, path) -> None:
    """Pack the table into fixed-width binary records."""
    path = Path(path)
    arrays = [table[name] for name in _BIN_ORDER]
    with path.open("wb") as fh:
        fh.write(_BIN_MAGIC)
        fh.write(struct.pack("<q", len(table)))
        packer = struct.Struct(_BIN_FMT)
        for i in range(len(table)):
            fh.write(packer.pack(*(a[i] for a in arrays)))


def read_binary(path) -> FlowTable:
    """Inverse of :func:`write_binary`."""
    path = Path(path)
    data = path.read_bytes()
    if data[:4] != _BIN_MAGIC:
        raise ValueError(f"{path} is not a repro binary flow file")
    (count,) = struct.unpack_from("<q", data, 4)
    expected = 12 + count * _BIN_RECORD_LEN
    if len(data) < expected:
        raise ValueError("truncated binary flow file")
    cols: dict[str, list] = {name: [] for name in _BIN_ORDER}
    packer = struct.Struct(_BIN_FMT)
    offset = 12
    for _ in range(count):
        fields = packer.unpack_from(data, offset)
        offset += _BIN_RECORD_LEN
        for name, value in zip(_BIN_ORDER, fields):
            cols[name].append(value)
    return FlowTable({name: np.asarray(vals) for name, vals in cols.items()})
