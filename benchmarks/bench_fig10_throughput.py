"""Fig. 10 — edges generation throughput and the property overhead.

Paper: throughput (edges/s) of PGPBA vs PGSK over the Fig. 9 sweep, with
PGPBA ahead; generating the vertex/edge properties costs on average +50%
for PGPBA and +30% for PGSK — the *same* decoration function, hitting
PGPBA harder only because its structural phase is cheaper.

Here: the same measurement on the simulated cluster, asserting the
ordering of throughputs and that the relative property overhead is larger
for PGPBA than for PGSK.
"""

from __future__ import annotations

import numpy as np

from conftest import save_series
from repro.bench import default_cluster
from repro.core import PGPBA, PGSK

FACTORS = (16, 64, 256)


def run_fig10(seed_graph, seed_analysis):
    pgsk = PGSK(seed=10, kronfit_iterations=8, kronfit_swaps=30)
    initiator = pgsk.fit_initiator(seed_graph)
    rows = []
    overheads = {"PGPBA": [], "PGSK": []}
    for factor in FACTORS:
        target = factor * seed_graph.n_edges
        res_ba = PGPBA(fraction=2.0, seed=10).generate(
            seed_graph, seed_analysis, target, context=default_cluster()
        )
        res_sk = pgsk.generate(
            seed_graph, seed_analysis, target,
            context=default_cluster(), initiator=initiator,
        )
        overheads["PGPBA"].append(res_ba.property_overhead)
        overheads["PGSK"].append(res_sk.property_overhead)
        rows.append(
            [
                target,
                res_ba.edges_per_second,
                res_sk.edges_per_second,
                res_ba.property_overhead,
                res_sk.property_overhead,
            ]
        )
    return rows, overheads


def test_fig10_throughput_and_property_overhead(
    benchmark, seed_graph, seed_analysis
):
    rows, overheads = run_fig10(seed_graph, seed_analysis)
    save_series(
        "fig10",
        "Fig. 10: throughput (edges/s, simulated) and property overhead",
        [
            "target_edges",
            "PGPBA_eps",
            "PGSK_eps",
            "PGPBA_prop_overhead",
            "PGSK_prop_overhead",
        ],
        rows,
    )
    # PGPBA achieves the higher throughput at the largest size.
    assert rows[-1][1] > rows[-1][2]
    # The shared decoration function hits PGPBA's cheaper structural phase
    # relatively harder (paper: ~50% vs ~30%).
    assert np.mean(overheads["PGPBA"]) > np.mean(overheads["PGSK"])
    # Overheads are material, not rounding noise.
    assert np.mean(overheads["PGPBA"]) > 0.05

    def op():
        return PGPBA(fraction=2.0, seed=11).generate(
            seed_graph, seed_analysis, 16 * seed_graph.n_edges,
            context=default_cluster(),
        )

    benchmark.pedantic(op, rounds=1, iterations=1)
