"""Unit tests for repro.stats.conditional."""

import numpy as np
import pytest

from repro.stats import ConditionalDistribution


def _coupled_data(n=5000, seed=0):
    """Target strongly increases with the conditioner."""
    rng = np.random.default_rng(seed)
    cond = rng.integers(1, 1000, size=n)
    target = cond * 10 + rng.integers(0, 5, size=n)
    return cond, target


class TestFit:
    def test_basic_fit(self):
        cond, target = _coupled_data()
        cd = ConditionalDistribution.fit(cond, target, n_bins=8)
        assert cd.n_bins >= 1

    def test_mismatched_shapes_rejected(self):
        with pytest.raises(ValueError, match="matching 1-D"):
            ConditionalDistribution.fit(np.array([1, 2]), np.array([1]))

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="zero observations"):
            ConditionalDistribution.fit(np.array([]), np.array([]))

    def test_constant_conditioner_single_bin(self):
        cd = ConditionalDistribution.fit(
            np.full(100, 7), np.arange(100), n_bins=8
        )
        assert cd.n_bins == 1

    def test_sparse_bins_fall_back_to_global(self, rng):
        # Almost all mass at one conditioner value, a couple of outliers.
        cond = np.concatenate([np.zeros(100, dtype=int), [1000, 2000]])
        target = np.concatenate([np.zeros(100, dtype=int), [5, 9]])
        cd = ConditionalDistribution.fit(
            cond, target, n_bins=4, min_bin_count=10
        )
        # The outlier bin inherits the global distribution, which is
        # dominated by zeros.
        d = cd.distribution_for(1500)
        assert d.pmf([0])[0] > 0.9


class TestSampling:
    def test_preserves_coupling(self, rng):
        cond, target = _coupled_data()
        cd = ConditionalDistribution.fit(cond, target, n_bins=16)
        lo = cd.sample(np.full(2000, 10), rng)
        hi = cd.sample(np.full(2000, 900), rng)
        assert hi.mean() > lo.mean() * 10

    def test_unconditional_marginal_preserved(self, rng):
        cond, target = _coupled_data()
        cd = ConditionalDistribution.fit(cond, target, n_bins=16)
        out = cd.sample(cond, rng)
        # Resampling with the true conditioner distribution reproduces the
        # target's overall mean within a few percent.
        assert out.mean() == pytest.approx(target.mean(), rel=0.05)

    def test_output_aligned_with_input(self, rng):
        cond, target = _coupled_data(n=100)
        cd = ConditionalDistribution.fit(cond, target, n_bins=4)
        out = cd.sample(cond[:17], rng)
        assert out.shape == (17,)

    def test_empty_input(self, rng):
        cond, target = _coupled_data(n=50)
        cd = ConditionalDistribution.fit(cond, target)
        assert cd.sample(np.array([]), rng).size == 0

    def test_values_outside_training_range_clamped(self, rng):
        cond, target = _coupled_data()
        cd = ConditionalDistribution.fit(cond, target, n_bins=8)
        out_lo = cd.sample(np.full(100, -1e9), rng)
        out_hi = cd.sample(np.full(100, 1e9), rng)
        assert out_lo.size == 100 and out_hi.size == 100
        assert out_hi.mean() > out_lo.mean()

    def test_deterministic_given_seed(self):
        cond, target = _coupled_data(n=500)
        cd = ConditionalDistribution.fit(cond, target)
        a = cd.sample(cond[:100], np.random.default_rng(4))
        b = cd.sample(cond[:100], np.random.default_rng(4))
        assert np.array_equal(a, b)
