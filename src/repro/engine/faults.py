"""Deterministic fault injection for the Map-Reduce engine.

The paper's generators run on Spark, whose defining operational property
is that a lost task is *recomputed from lineage* instead of aborting the
job.  To prove our recovery layer (``repro.engine.executor.
run_with_recovery``) reproduces that property bit-for-bit, this module
provides a seeded, serializable :class:`FaultPlan` that decides — purely
as a function of ``(plan seed, batch, task index, attempt)`` — whether a
given task attempt

* raises an :class:`InjectedFault`,
* dies like a crashed worker (the ``processes`` backend child really
  calls ``os._exit``; in-driver backends raise
  :class:`SimulatedWorkerDeath` instead, which the recovery layer treats
  identically), or
* straggles (sleeps ``straggler_seconds`` *outside* the measured task
  region, so the simulated clock never sees the delay and speculative
  re-execution has something to win against).

Because the decision is a pure function of the attempt coordinates, a
fault schedule is reproducible across executor backends and across
retries: attempt ``k`` of a task always sees the same verdict, and
attempts at or past ``max_failures_per_task`` are always clean — so any
``max_task_retries >= max_failures_per_task`` provably converges, and
chaos tests can assert the recovered output digest equals the fault-free
run's.

Plans are plain dataclasses with a JSON wire form: pass one to
``ClusterContext(fault_plan=...)`` (a :class:`FaultPlan`, a dict, or a
JSON string), or set the ``REPRO_FAULTS`` environment variable / the
CLI ``--faults`` flag to the JSON form.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import asdict, dataclass
from typing import Any, Callable, Mapping

import numpy as np

__all__ = [
    "FAULTS_ENV_VAR",
    "RETRIES_ENV_VAR",
    "SPECULATION_ENV_VAR",
    "KILL_EXIT_CODE",
    "InjectedFault",
    "SimulatedWorkerDeath",
    "FaultPlan",
    "resolve_max_task_retries",
    "resolve_speculation",
]

FAULTS_ENV_VAR = "REPRO_FAULTS"
RETRIES_ENV_VAR = "REPRO_MAX_TASK_RETRIES"
SPECULATION_ENV_VAR = "REPRO_SPECULATION"

# Exit code an injected "kill" uses in a real worker child; chosen to be
# recognisable in WorkerDied messages (and distinct from Python's 1).
KILL_EXIT_CODE = 73

_OFF_VALUES = frozenset({"off", "0", "false", "no"})
_ON_VALUES = frozenset({"on", "1", "true", "yes"})

# Salt mixed into the fault RNG key so fault decisions are decorrelated
# from the engine's data RNG streams, which key on (seed, partition).
_FAULT_STREAM_SALT = 104_729


class InjectedFault(RuntimeError):
    """A task failure raised on purpose by a :class:`FaultPlan`."""


class SimulatedWorkerDeath(InjectedFault):
    """Worker-death injection on a backend that runs tasks in-driver,
    where actually exiting the process would kill the whole run."""


@dataclass(frozen=True)
class FaultPlan:
    """Seeded, serializable schedule of task-granular fault injections.

    ``p_exception`` / ``p_kill`` / ``p_straggler`` are per-attempt
    probabilities (their sum must stay <= 1); ``max_failures_per_task``
    is the injection horizon: attempts numbered at or past it are never
    faulted, which bounds consecutive failures per task and makes
    convergence under retries provable.  Speculative duplicate attempts
    are dispatched at the horizon, so they always run clean.
    """

    seed: int = 0
    p_exception: float = 0.0
    p_kill: float = 0.0
    p_straggler: float = 0.0
    straggler_seconds: float = 0.02
    max_failures_per_task: int = 2

    def __post_init__(self) -> None:
        if int(self.seed) != self.seed or self.seed < 0:
            raise ValueError(f"seed must be a non-negative int, got {self.seed!r}")
        for name in ("p_exception", "p_kill", "p_straggler"):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {p!r}")
        total = self.p_exception + self.p_kill + self.p_straggler
        if total > 1.0 + 1e-12:
            raise ValueError(
                f"fault probabilities must sum to <= 1, got {total!r}"
            )
        if self.straggler_seconds < 0:
            raise ValueError(
                f"straggler_seconds must be >= 0, got {self.straggler_seconds!r}"
            )
        if int(self.max_failures_per_task) != self.max_failures_per_task or (
            self.max_failures_per_task < 0
        ):
            raise ValueError(
                "max_failures_per_task must be a non-negative int, got "
                f"{self.max_failures_per_task!r}"
            )

    # ------------------------------------------------------------------
    @property
    def is_zero(self) -> bool:
        """True when the plan can never inject anything."""
        return (
            self.p_exception == 0.0
            and self.p_kill == 0.0
            and self.p_straggler == 0.0
        )

    def action(self, batch: int, index: int, attempt: int) -> str | None:
        """The verdict for one task attempt: ``"exception"``, ``"kill"``,
        ``"straggler"`` or ``None`` — a pure function of the coordinates,
        so it is identical on every backend and on every replay."""
        if self.is_zero or attempt >= self.max_failures_per_task:
            return None
        u = np.random.default_rng(
            (self.seed, _FAULT_STREAM_SALT, batch, index, attempt)
        ).random()
        if u < self.p_exception:
            return "exception"
        if u < self.p_exception + self.p_kill:
            return "kill"
        if u < self.p_exception + self.p_kill + self.p_straggler:
            return "straggler"
        return None

    def wrap(
        self,
        task: Callable[[], Any],
        *,
        batch: int,
        index: int,
        attempt: int,
        driver_pid: int,
    ) -> Callable[[], Any]:
        """Wrap one task attempt with this plan's verdict.

        The verdict is evaluated when the wrapped task *runs* — in the
        worker child for the ``processes`` backend — so a "kill" can
        really take the worker process down (``os._exit``) when the task
        executes outside ``driver_pid``, and degrades to
        :class:`SimulatedWorkerDeath` in-driver.  A straggler sleeps
        before the task body, outside its measured segments: the
        simulated cluster clock never sees injected delays.
        """
        if self.is_zero:
            return task

        def _faulted() -> Any:
            action = self.action(batch, index, attempt)
            if action == "exception":
                raise InjectedFault(
                    f"injected task failure (batch={batch}, task={index}, "
                    f"attempt={attempt})"
                )
            if action == "kill":
                if os.getpid() != driver_pid:
                    os._exit(KILL_EXIT_CODE)
                raise SimulatedWorkerDeath(
                    f"injected worker death (batch={batch}, task={index}, "
                    f"attempt={attempt})"
                )
            if action == "straggler":
                time.sleep(self.straggler_seconds)
            return task()

        return _faulted

    # ------------------------------------------------------------------
    # wire form
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return asdict(self)

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultPlan":
        fields = set(cls.__dataclass_fields__)
        unknown = sorted(set(data) - fields)
        if unknown:
            raise ValueError(
                f"unknown FaultPlan field(s) {unknown}; "
                f"choose from {sorted(fields)}"
            )
        return cls(**dict(data))

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ValueError(
                f"fault plan must be a JSON object, got {text!r}: {exc}"
            ) from exc
        if not isinstance(data, dict):
            raise ValueError(
                f"fault plan must be a JSON object, got {text!r}"
            )
        return cls.from_dict(data)

    @classmethod
    def from_env(cls, environ: Mapping[str, str] | None = None) -> "FaultPlan | None":
        """Parse ``REPRO_FAULTS``; ``None`` when unset or blank."""
        raw = (environ if environ is not None else os.environ).get(
            FAULTS_ENV_VAR
        )
        if raw is None or not raw.strip():
            return None
        try:
            return cls.from_json(raw)
        except ValueError as exc:
            raise ValueError(f"{FAULTS_ENV_VAR}: {exc}") from exc

    @classmethod
    def resolve(
        cls, value: "FaultPlan | Mapping | str | None" = None
    ) -> "FaultPlan | None":
        """Coerce a plan spec: explicit argument > ``REPRO_FAULTS`` env.

        Accepts an existing plan, a mapping, or a JSON string; ``None``
        falls back to the environment (and stays ``None`` when the
        environment is silent too).
        """
        if value is None:
            return cls.from_env()
        if isinstance(value, cls):
            return value
        if isinstance(value, Mapping):
            return cls.from_dict(value)
        if isinstance(value, str):
            return cls.from_json(value)
        raise TypeError(
            f"fault_plan must be a FaultPlan, dict, JSON string or None, "
            f"got {type(value).__name__}"
        )


# ----------------------------------------------------------------------
def resolve_max_task_retries(value: int | None = None, default: int = 3) -> int:
    """Retry budget per task: explicit argument > ``REPRO_MAX_TASK_RETRIES``
    env > ``default`` (3, mirroring Spark's ``task.maxFailures=4``)."""
    if value is None:
        env = os.environ.get(RETRIES_ENV_VAR)
        if env is not None and env.strip():
            try:
                value = int(env)
            except ValueError as exc:
                raise ValueError(
                    f"{RETRIES_ENV_VAR} must be an integer, got {env!r}"
                ) from exc
        else:
            return default
    if value < 0:
        raise ValueError(f"max_task_retries must be >= 0, got {value!r}")
    return int(value)


def resolve_speculation(flag: bool | None = None) -> bool:
    """Speculative-execution switch: explicit argument >
    ``REPRO_SPECULATION`` env > off."""
    if flag is not None:
        return bool(flag)
    raw = os.environ.get(SPECULATION_ENV_VAR)
    if raw is None:
        return False
    value = raw.strip().lower()
    if value in _ON_VALUES:
        return True
    if value in _OFF_VALUES or value == "":
        return False
    raise ValueError(
        f"{SPECULATION_ENV_VAR} must be one of "
        f"{sorted(_ON_VALUES | _OFF_VALUES)}, got {raw!r}"
    )
