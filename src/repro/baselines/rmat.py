"""R-MAT (Chakrabarti, Zhan & Faloutsos 2004).

The recursive-matrix model that stochastic Kronecker generalises: each
edge descends a 2x2 probability split ``(a, b; c, d)`` for ``log2(n)``
levels.  Implemented directly on top of the Kronecker descent kernel —
R-MAT *is* a stochastic Kronecker graph whose initiator rows are
renormalised per descent rather than fitted; the Graph500 defaults
(a=0.57, b=0.19, c=0.19, d=0.05) are used unless overridden.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import BaselineGenerator
from repro.kronecker.expand import descend_batch
from repro.kronecker.initiator import InitiatorMatrix

__all__ = ["RMat"]


class RMat(BaselineGenerator):
    """R-MAT with Graph500 default partition probabilities."""

    name = "R-MAT"

    def __init__(
        self,
        *,
        a: float = 0.57,
        b: float = 0.19,
        c: float = 0.19,
        d: float = 0.05,
        seed: int = 0,
    ) -> None:
        super().__init__(seed=seed)
        total = a + b + c + d
        if total <= 0:
            raise ValueError("partition probabilities must be positive")
        if min(a, b, c, d) <= 0:
            raise ValueError("all four quadrant probabilities must be > 0")
        self.theta = np.asarray([[a, b], [c, d]]) / total

    def edges(self, n_vertices, n_edges, rng, analysis):
        k = max(1, int(np.ceil(np.log2(n_vertices))))
        # descend_batch only uses the *normalised* cell distribution, so the
        # initiator scale is irrelevant here; clip into the valid domain.
        initiator = InitiatorMatrix(np.clip(self.theta, 1e-9, 1.0))
        src, dst = descend_batch(initiator, k, n_edges, rng)
        return 2 ** k, src, dst
