"""Attack traffic injectors.

Each injector synthesizes the packet-level signature of one attack class
from Section IV of the paper (Fig. 4's detection targets): TCP SYN flood,
host scanning, network scanning, UDP/ICMP flooding, and distributed
(multi-source) flooding.  Injectors return time-stamped frames plus a
ground-truth :class:`AttackGroundTruth` so detector evaluation can compute
precision/recall.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.pcap.packet import (
    PROTO_ICMP,
    PROTO_TCP,
    PROTO_UDP,
    TcpFlags,
    build_ethernet_ipv4_packet,
)

__all__ = [
    "AttackGroundTruth",
    "syn_flood",
    "host_scan",
    "network_scan",
    "udp_flood",
    "icmp_flood",
    "ddos_syn_flood",
]

TimedFrame = tuple[float, bytes]


@dataclass(frozen=True)
class AttackGroundTruth:
    """Label for an injected attack: what, who, and when."""

    kind: str
    attacker_ips: tuple[int, ...]
    victim_ips: tuple[int, ...]
    start_time: float
    end_time: float
    frames: list[TimedFrame] = field(compare=False, repr=False, default_factory=list)


def _spread(start: float, duration: float, n: int, rng) -> np.ndarray:
    return start + np.sort(rng.random(n) * duration)


def syn_flood(
    *,
    attacker_ip: int,
    victim_ip: int,
    victim_port: int = 80,
    start_time: float,
    duration: float = 5.0,
    n_packets: int = 2000,
    seed: int = 11,
) -> AttackGroundTruth:
    """TCP SYN flood: many tiny SYNs to one (host, port), no handshake.

    Signature (paper §IV-d): many flows, small packets (~40 B frames),
    small per-flow packet counts, low ACK/SYN ratio, few destination ports.
    """
    rng = np.random.default_rng(seed)
    times = _spread(start_time, duration, n_packets, rng)
    sports = rng.integers(1024, 65535, size=n_packets)
    frames = [
        (
            float(times[i]),
            build_ethernet_ipv4_packet(
                src_ip=attacker_ip, dst_ip=victim_ip, protocol=PROTO_TCP,
                src_port=int(sports[i]), dst_port=victim_port,
                tcp_flags=TcpFlags.SYN, payload_len=0,
            ),
        )
        for i in range(n_packets)
    ]
    return AttackGroundTruth(
        kind="syn_flood",
        attacker_ips=(attacker_ip,),
        victim_ips=(victim_ip,),
        start_time=start_time,
        end_time=start_time + duration,
        frames=frames,
    )


def host_scan(
    *,
    attacker_ip: int,
    victim_ip: int,
    start_time: float,
    n_ports: int = 500,
    duration: float = 10.0,
    seed: int = 12,
) -> AttackGroundTruth:
    """Port scan of a single host: one small SYN to each of many ports.

    Signature (paper §IV-b): many flows to one destination IP, high
    destination-port count, ~40-byte probe packets.
    """
    rng = np.random.default_rng(seed)
    ports = rng.permutation(np.arange(1, max(2, n_ports + 1)))[:n_ports]
    times = _spread(start_time, duration, n_ports, rng)
    frames = [
        (
            float(times[i]),
            build_ethernet_ipv4_packet(
                src_ip=attacker_ip, dst_ip=victim_ip, protocol=PROTO_TCP,
                src_port=int(rng.integers(1024, 65535)),
                dst_port=int(ports[i]),
                tcp_flags=TcpFlags.SYN, payload_len=0,
            ),
        )
        for i in range(n_ports)
    ]
    return AttackGroundTruth(
        kind="host_scan",
        attacker_ips=(attacker_ip,),
        victim_ips=(victim_ip,),
        start_time=start_time,
        end_time=start_time + duration,
        frames=frames,
    )


def network_scan(
    *,
    attacker_ip: int,
    subnet_base: int,
    start_time: float,
    n_hosts: int = 200,
    target_port: int = 445,
    duration: float = 20.0,
    seed: int = 13,
) -> AttackGroundTruth:
    """Sweep of one port across many hosts of a subnet.

    Signature (paper §IV-c): many distinct destination IPs from a single
    source, small probes; bandwidth/packet totals uninformative.
    """
    rng = np.random.default_rng(seed)
    hosts = subnet_base + 1 + rng.permutation(max(n_hosts, 1) * 2)[:n_hosts]
    times = _spread(start_time, duration, n_hosts, rng)
    frames = [
        (
            float(times[i]),
            build_ethernet_ipv4_packet(
                src_ip=attacker_ip, dst_ip=int(hosts[i]), protocol=PROTO_TCP,
                src_port=int(rng.integers(1024, 65535)),
                dst_port=target_port,
                tcp_flags=TcpFlags.SYN, payload_len=0,
            ),
        )
        for i in range(n_hosts)
    ]
    return AttackGroundTruth(
        kind="network_scan",
        attacker_ips=(attacker_ip,),
        victim_ips=tuple(int(h) for h in hosts),
        start_time=start_time,
        end_time=start_time + duration,
        frames=frames,
    )


def udp_flood(
    *,
    attacker_ip: int,
    victim_ip: int,
    victim_port: int = 53,
    start_time: float,
    duration: float = 5.0,
    n_packets: int = 6000,
    payload: int = 1200,
    seed: int = 14,
) -> AttackGroundTruth:
    """UDP bandwidth flood: large useless datagrams at a single service.

    Signature (paper §IV-e): very high total bandwidth and packet count,
    small deviation in per-flow size.
    """
    rng = np.random.default_rng(seed)
    times = _spread(start_time, duration, n_packets, rng)
    sports = rng.integers(1024, 65535, size=n_packets)
    frames = [
        (
            float(times[i]),
            build_ethernet_ipv4_packet(
                src_ip=attacker_ip, dst_ip=victim_ip, protocol=PROTO_UDP,
                src_port=int(sports[i]), dst_port=victim_port,
                payload_len=payload,
            ),
        )
        for i in range(n_packets)
    ]
    return AttackGroundTruth(
        kind="udp_flood",
        attacker_ips=(attacker_ip,),
        victim_ips=(victim_ip,),
        start_time=start_time,
        end_time=start_time + duration,
        frames=frames,
    )


def icmp_flood(
    *,
    attacker_ip: int,
    victim_ip: int,
    start_time: float,
    duration: float = 5.0,
    n_packets: int = 6000,
    payload: int = 1000,
    seed: int = 15,
) -> AttackGroundTruth:
    """ICMP echo flood (ping flood / smurf-style reflection volume)."""
    rng = np.random.default_rng(seed)
    times = _spread(start_time, duration, n_packets, rng)
    frames = [
        (
            float(times[i]),
            build_ethernet_ipv4_packet(
                src_ip=attacker_ip, dst_ip=victim_ip, protocol=PROTO_ICMP,
                src_port=int(rng.integers(1, 65535)), dst_port=i % 65536,
                payload_len=payload,
            ),
        )
        for i in range(n_packets)
    ]
    return AttackGroundTruth(
        kind="icmp_flood",
        attacker_ips=(attacker_ip,),
        victim_ips=(victim_ip,),
        start_time=start_time,
        end_time=start_time + duration,
        frames=frames,
    )


def ddos_syn_flood(
    *,
    attacker_ips: tuple[int, ...],
    victim_ip: int,
    victim_port: int = 80,
    start_time: float,
    duration: float = 5.0,
    packets_per_attacker: int = 500,
    seed: int = 16,
) -> AttackGroundTruth:
    """Distributed SYN flood: the §IV-a multi-source variant.

    Per-source rate may stay under single-source thresholds; detection must
    key on the *destination* aggregation, which is why the detector builds
    destination-based traffic patterns first.
    """
    if not attacker_ips:
        raise ValueError("need at least one attacker")
    frames: list[TimedFrame] = []
    for j, atk in enumerate(attacker_ips):
        gt = syn_flood(
            attacker_ip=atk,
            victim_ip=victim_ip,
            victim_port=victim_port,
            start_time=start_time,
            duration=duration,
            n_packets=packets_per_attacker,
            seed=seed + j,
        )
        frames.extend(gt.frames)
    frames.sort(key=lambda f: f[0])
    return AttackGroundTruth(
        kind="ddos_syn_flood",
        attacker_ips=tuple(attacker_ips),
        victim_ips=(victim_ip,),
        start_time=start_time,
        end_time=start_time + duration,
        frames=frames,
    )
