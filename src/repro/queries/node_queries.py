"""Node-level queries: lookups, rankings, neighbourhoods.

Every function accepts either a bare
:class:`~repro.graph.property_graph.PropertyGraph` or a prebuilt
:class:`~repro.serve.snapshot.GraphSnapshot`; bare graphs are routed
through their memoized snapshot, so repeated queries share one set of
prebuilt indexes.  Results are byte-identical either way.
"""

from __future__ import annotations

import numpy as np

__all__ = ["vertex_by_host_id", "degree_top_k", "neighbors"]


def vertex_by_host_id(graph, host_id: int) -> int | None:
    """Vertex index of the host with vertex-property ``ID == host_id``.

    Probes the snapshot's sorted host-ID index; returns None when the
    host is unknown.  Graphs without an ``ID`` column use vertex indices
    as identities (the generated-graph convention).
    """
    snap = graph.snapshot()
    if snap.host_index is None:
        # Generated graphs use vertex indices as identities.
        return int(host_id) if 0 <= host_id < snap.n_vertices else None
    return snap.host_vertex(host_id)


def degree_top_k(graph, k: int, *, kind: str = "total") -> np.ndarray:
    """Vertex indices of the k highest-degree hosts (busiest talkers).

    ``kind`` selects ``"in"`` (popular services), ``"out"`` (chatty
    clients) or ``"total"``.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    snap = graph.snapshot()
    if kind == "in":
        deg = snap.in_degree
    elif kind == "out":
        deg = snap.out_degree
    elif kind == "total":
        deg = snap.total_degree
    else:
        raise ValueError(f"unknown degree kind {kind!r}")
    k = min(k, snap.n_vertices)
    top = np.argpartition(deg, -k)[-k:]
    return top[np.argsort(-deg[top], kind="stable")]


def neighbors(graph, vertex: int, *, direction: str = "out") -> np.ndarray:
    """Distinct neighbour vertices of ``vertex``.

    ``direction``: "out" (hosts this one contacted), "in" (hosts that
    contacted it), or "both".  One CSR row gather per direction — no
    full-column scan.
    """
    snap = graph.snapshot()
    if not 0 <= vertex < snap.n_vertices:
        raise ValueError(f"vertex {vertex} out of range")
    if direction == "out":
        return snap.out_neighbors(vertex).copy()
    if direction == "in":
        return snap.in_neighbors(vertex).copy()
    if direction == "both":
        return np.unique(
            np.concatenate(
                [snap.out_neighbors(vertex), snap.in_neighbors(vertex)]
            )
        )
    raise ValueError(f"unknown direction {direction!r}")
