"""Tests for the Fig. 1 preliminary pipeline and seed analysis."""

import numpy as np
import pytest

from repro.core import SeedAnalysis, analyze_seed, build_seed
from repro.core.generator import PropertyModel
from repro.graph import PropertyGraph
from repro.netflow.attributes import (
    CONDITIONING_ATTRIBUTE,
    NETFLOW_EDGE_ATTRIBUTES,
)
from repro.pcap.writer import write_pcap
from repro.trace.synthesizer import synthesize_seed_packets


class TestBuildSeed:
    def test_from_frames(self, seed_bundle):
        assert len(seed_bundle.flow_table) > 50
        assert seed_bundle.graph.n_edges == len(seed_bundle.flow_table)
        assert seed_bundle.analysis.n_edges == seed_bundle.graph.n_edges

    def test_from_pcap_file_equivalent(self, tmp_path, seed_packets,
                                       seed_bundle):
        path = tmp_path / "seed.pcap"
        write_pcap(path, seed_packets)
        from_file = build_seed(path)
        assert len(from_file.flow_table) == len(seed_bundle.flow_table)
        assert from_file.graph.n_vertices == seed_bundle.graph.n_vertices

    def test_empty_source_rejected(self):
        with pytest.raises(ValueError, match="no flows"):
            build_seed([])

    def test_graph_has_all_nine_attributes(self, seed_graph):
        for name in NETFLOW_EDGE_ATTRIBUTES:
            assert name in seed_graph.edge_properties

    def test_vertices_carry_host_ids(self, seed_bundle):
        ids = seed_bundle.graph.vertex_properties["ID"]
        assert np.array_equal(ids, seed_bundle.flow_table.hosts())


class TestSeedAnalysis:
    def test_degree_distributions_exclude_zero(self, seed_analysis):
        assert 0 not in seed_analysis.in_degree.values
        assert 0 not in seed_analysis.out_degree.values

    def test_multiplicity_at_least_one(self, seed_analysis):
        assert seed_analysis.multiplicity.values.min() >= 1

    def test_empty_graph_rejected(self):
        with pytest.raises(ValueError, match="no edges"):
            analyze_seed(PropertyGraph.empty())

    def test_analyze_matches_from_graph(self, seed_graph):
        a = analyze_seed(seed_graph)
        b = SeedAnalysis.from_graph(seed_graph)
        assert np.array_equal(a.in_degree.values, b.in_degree.values)


class TestPropertyModel:
    def test_fit_requires_all_attributes(self):
        with pytest.raises(ValueError, match="lacks"):
            PropertyModel.fit({"PROTOCOL": np.array([6])})

    def test_sample_columns_shapes(self, seed_analysis, rng):
        cols = seed_analysis.properties.sample_columns(100, rng)
        assert set(cols) == set(NETFLOW_EDGE_ATTRIBUTES)
        assert all(len(v) == 100 for v in cols.values())

    def test_samples_stay_on_seed_support(self, seed_analysis, rng):
        model = seed_analysis.properties
        cols = model.sample_columns(500, rng)
        for name in NETFLOW_EDGE_ATTRIBUTES:
            seed_support = set(
                np.unique(model.marginals[name].values).tolist()
            )
            assert set(np.unique(cols[name]).tolist()) <= seed_support

    def test_conditional_coupling_preserved(self, seed_analysis, rng):
        """Big IN_BYTES draws should come with big IN_PKTS draws."""
        model = seed_analysis.properties
        cols = model.sample_columns(4000, rng, conditional=True)
        anchor = cols[CONDITIONING_ATTRIBUTE].astype(np.float64)
        pkts = cols["IN_PKTS"].astype(np.float64)
        if np.std(anchor) > 0 and np.std(pkts) > 0:
            # Pearson on heavy-tailed byte counts is noisy; the point is
            # that a clearly positive coupling survives sampling.
            corr = np.corrcoef(anchor, pkts)[0, 1]
            assert corr > 0.15

    def test_unconditional_decouples(self, seed_analysis, rng):
        model = seed_analysis.properties
        cond = model.sample_columns(4000, rng, conditional=True)
        unc = model.sample_columns(4000, rng, conditional=False)

        def corr(cols):
            a = cols[CONDITIONING_ATTRIBUTE].astype(np.float64)
            b = cols["IN_PKTS"].astype(np.float64)
            return np.corrcoef(a, b)[0, 1]

        assert corr(cond) > corr(unc) + 0.2

    def test_protocol_mix_preserved(self, seed_analysis, rng):
        model = seed_analysis.properties
        cols = model.sample_columns(5000, rng)
        seed_tcp = model.marginals["PROTOCOL"].pmf([6])[0]
        sampled_tcp = np.mean(cols["PROTOCOL"] == 6)
        assert sampled_tcp == pytest.approx(seed_tcp, abs=0.05)
