"""Deterministic fault injection + lineage-based recovery.

The contract under test — the engine's Spark property: under any seeded
fault plan (raised exceptions, killed worker processes, stragglers) with
retries enabled, every backend produces the bit-identical dataset and
the identical simulated-cluster accounting as the fault-free run.
Recovery is wall-clock-only; the Fig. 8-12 series never see it.

Layers covered here:

* ``FaultPlan`` itself: purity/determinism of the decision function, the
  injection horizon, the JSON wire form and the env/CLI knobs;
* ``run_with_recovery``: retry rounds, budget exhaustion re-raising the
  original error, recompute accounting;
* real worker death on the ``processes`` backend (the child actually
  ``os._exit``\\ s and the driver observes it as :class:`WorkerDied`);
* speculative re-execution of stragglers (first result wins);
* end-to-end equivalence for RDD pipelines and full PGPBA / PGSK
  generation across serial / threads / processes;
* a Hypothesis chaos property over random (pipeline, fault plan) pairs —
  ``REPRO_CHAOS_EXAMPLES`` scales the example count (CI runs 200).
"""

from __future__ import annotations

import hashlib
import multiprocessing as mp
import os
import time

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cli import build_parser
from repro.core import PGPBA, PGSK
from repro.engine import (
    ClusterContext,
    FaultPlan,
    InjectedFault,
    ProcessExecutor,
    RecoveryStats,
    SimulatedWorkerDeath,
    SpeculationPolicy,
    WorkerDied,
    available_backends,
    make_executor,
    run_with_recovery,
)
from repro.engine.executor import (
    Executor,
    WORKERS_ENV_VAR,
    _reap_leaked_children,
    _resolve_workers,
    default_workers,
)
from repro.engine.faults import (
    FAULTS_ENV_VAR,
    KILL_EXIT_CODE,
    RETRIES_ENV_VAR,
    SPECULATION_ENV_VAR,
    resolve_max_task_retries,
    resolve_speculation,
)

BACKENDS = available_backends()

ZERO_PLAN = FaultPlan()

# A plan that injects all three fault kinds at rates high enough to hit
# every multi-batch workload below, while staying convergent: the
# injection horizon (2) is within the default retry budget (3).
CHAOS_PLAN = FaultPlan(
    seed=13,
    p_exception=0.25,
    p_kill=0.15,
    p_straggler=0.1,
    straggler_seconds=0.002,
    max_failures_per_task=2,
)


def digest(arrays) -> str:
    h = hashlib.sha256()
    for a in arrays:
        h.update(np.ascontiguousarray(a).tobytes())
    return h.hexdigest()


def stage_structure(ctx):
    """Everything about the simulated stages except the measured times."""
    return [
        (r.stage, r.partition, r.node, r.bytes_out)
        for r in ctx.metrics.tasks
    ]


def _ctx(backend="serial", plan=ZERO_PLAN, **kw):
    kw.setdefault("n_nodes", 2)
    kw.setdefault("executor_cores", 2)
    kw.setdefault("local_workers", 3)
    kw.setdefault("retry_backoff_seconds", 0.0)
    return ClusterContext(executor=backend, fault_plan=plan, **kw)


# ----------------------------------------------------------------------
# FaultPlan unit behaviour
# ----------------------------------------------------------------------
class TestFaultPlan:
    def test_action_is_pure(self):
        plan = FaultPlan(seed=5, p_exception=0.3, p_kill=0.3, p_straggler=0.3)
        coords = [(b, i, a) for b in range(4) for i in range(6) for a in range(3)]
        first = [plan.action(*c) for c in coords]
        second = [plan.action(*c) for c in coords]
        assert first == second
        assert any(v is not None for v in first)

    def test_zero_plan_never_injects(self):
        assert ZERO_PLAN.is_zero
        assert ZERO_PLAN.action(0, 0, 0) is None
        task = lambda: 42  # noqa: E731
        assert ZERO_PLAN.wrap(
            task, batch=0, index=0, attempt=0, driver_pid=os.getpid()
        ) is task

    def test_injection_horizon(self):
        """Attempts at or past max_failures_per_task are always clean —
        the convergence guarantee for retries >= the horizon."""
        plan = FaultPlan(seed=0, p_exception=1.0, max_failures_per_task=2)
        assert plan.action(0, 0, 0) == "exception"
        assert plan.action(0, 0, 1) == "exception"
        assert plan.action(0, 0, 2) is None
        assert plan.action(0, 0, 99) is None

    def test_wrap_raises_exception(self):
        plan = FaultPlan(seed=0, p_exception=1.0)
        wrapped = plan.wrap(
            lambda: 1, batch=3, index=2, attempt=0, driver_pid=os.getpid()
        )
        with pytest.raises(InjectedFault, match="batch=3, task=2"):
            wrapped()

    def test_wrap_kill_in_driver_degrades_to_exception(self):
        plan = FaultPlan(seed=0, p_kill=1.0)
        wrapped = plan.wrap(
            lambda: 1, batch=0, index=0, attempt=0, driver_pid=os.getpid()
        )
        with pytest.raises(SimulatedWorkerDeath):
            wrapped()

    def test_wrap_straggler_still_returns(self):
        plan = FaultPlan(
            seed=0, p_straggler=1.0, straggler_seconds=0.0
        )
        wrapped = plan.wrap(
            lambda: 7, batch=0, index=0, attempt=0, driver_pid=os.getpid()
        )
        assert wrapped() == 7

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"seed": -1},
            {"p_exception": -0.1},
            {"p_kill": 1.5},
            {"p_exception": 0.6, "p_kill": 0.6},
            {"straggler_seconds": -1.0},
            {"max_failures_per_task": -2},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            FaultPlan(**kwargs)

    def test_json_round_trip(self):
        plan = FaultPlan(seed=9, p_exception=0.125, p_kill=0.0625)
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="p_meteor"):
            FaultPlan.from_dict({"seed": 1, "p_meteor": 0.5})

    def test_from_json_rejects_non_objects(self):
        with pytest.raises(ValueError, match="JSON object"):
            FaultPlan.from_json("[1, 2]")
        with pytest.raises(ValueError, match="JSON object"):
            FaultPlan.from_json("not json at all")

    def test_from_env(self, monkeypatch):
        monkeypatch.delenv(FAULTS_ENV_VAR, raising=False)
        assert FaultPlan.from_env() is None
        monkeypatch.setenv(FAULTS_ENV_VAR, "  ")
        assert FaultPlan.from_env() is None
        monkeypatch.setenv(FAULTS_ENV_VAR, '{"seed": 4, "p_kill": 0.2}')
        plan = FaultPlan.from_env()
        assert plan == FaultPlan(seed=4, p_kill=0.2)
        monkeypatch.setenv(FAULTS_ENV_VAR, "{broken")
        with pytest.raises(ValueError, match=FAULTS_ENV_VAR):
            FaultPlan.from_env()

    def test_resolve_precedence(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV_VAR, '{"seed": 1}')
        explicit = FaultPlan(seed=2)
        assert FaultPlan.resolve(explicit) is explicit
        assert FaultPlan.resolve({"seed": 3}) == FaultPlan(seed=3)
        assert FaultPlan.resolve('{"seed": 5}') == FaultPlan(seed=5)
        assert FaultPlan.resolve(None) == FaultPlan(seed=1)
        monkeypatch.delenv(FAULTS_ENV_VAR)
        assert FaultPlan.resolve(None) is None
        with pytest.raises(TypeError):
            FaultPlan.resolve(42)


class TestKnobResolution:
    def test_max_task_retries(self, monkeypatch):
        monkeypatch.delenv(RETRIES_ENV_VAR, raising=False)
        assert resolve_max_task_retries() == 3
        assert resolve_max_task_retries(0) == 0
        monkeypatch.setenv(RETRIES_ENV_VAR, "7")
        assert resolve_max_task_retries() == 7
        assert resolve_max_task_retries(2) == 2  # explicit beats env
        monkeypatch.setenv(RETRIES_ENV_VAR, "many")
        with pytest.raises(ValueError, match="'many'"):
            resolve_max_task_retries()
        with pytest.raises(ValueError):
            resolve_max_task_retries(-1)

    def test_speculation(self, monkeypatch):
        monkeypatch.delenv(SPECULATION_ENV_VAR, raising=False)
        assert resolve_speculation() is False
        assert resolve_speculation(True) is True
        for value in ("on", "1", "true", "YES"):
            monkeypatch.setenv(SPECULATION_ENV_VAR, value)
            assert resolve_speculation() is True
        for value in ("off", "0", "false", "no", ""):
            monkeypatch.setenv(SPECULATION_ENV_VAR, value)
            assert resolve_speculation() is False
        monkeypatch.setenv(SPECULATION_ENV_VAR, "maybe")
        with pytest.raises(ValueError, match="'maybe'"):
            resolve_speculation()
        assert resolve_speculation(False) is False  # explicit beats env

    def test_context_env_wiring(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV_VAR, '{"seed": 6, "p_exception": 0.1}')
        monkeypatch.setenv(RETRIES_ENV_VAR, "5")
        monkeypatch.setenv(SPECULATION_ENV_VAR, "on")
        ctx = ClusterContext(n_nodes=1)
        assert ctx.fault_plan == FaultPlan(seed=6, p_exception=0.1)
        assert ctx.max_task_retries == 5
        assert isinstance(ctx.speculation, SpeculationPolicy)
        explicit = ClusterContext(
            n_nodes=1, fault_plan=ZERO_PLAN, max_task_retries=1,
            speculation=False,
        )
        assert explicit.fault_plan == ZERO_PLAN
        assert explicit.max_task_retries == 1
        assert explicit.speculation is None
        with pytest.raises(ValueError):
            ClusterContext(n_nodes=1, retry_backoff_seconds=-1.0)


# ----------------------------------------------------------------------
# run_with_recovery unit behaviour
# ----------------------------------------------------------------------
class TestRunWithRecovery:
    def test_clean_batch_untouched(self):
        ex = make_executor("serial")
        stats = RecoveryStats()
        out = run_with_recovery(
            ex, [lambda i=i: i * 2 for i in range(5)], stats=stats
        )
        assert out == [0, 2, 4, 6, 8]
        assert stats == RecoveryStats()
        assert run_with_recovery(ex, []) == []

    def test_injected_failures_recovered_and_counted(self):
        plan = FaultPlan(seed=0, p_exception=1.0, max_failures_per_task=2)
        ex = make_executor("serial")
        stats = RecoveryStats()
        out = run_with_recovery(
            ex,
            [lambda: np.arange(8), lambda: np.arange(4)],
            fault_plan=plan,
            backoff_seconds=0.0,
            stats=stats,
        )
        assert np.array_equal(out[0], np.arange(8))
        assert np.array_equal(out[1], np.arange(4))
        # Both tasks fail on attempts 0 and 1, succeed on attempt 2.
        assert stats.tasks_failed == 4
        assert stats.tasks_retried == 4
        assert stats.recompute_bytes == 12 * np.arange(1).itemsize

    def test_budget_exhaustion_reraises_original(self):
        plan = FaultPlan(seed=0, p_exception=1.0, max_failures_per_task=9)
        ex = make_executor("serial")
        calls = []
        with pytest.raises(InjectedFault):
            run_with_recovery(
                ex,
                [lambda: calls.append(1)],
                fault_plan=plan,
                max_task_retries=1,
                backoff_seconds=0.0,
            )
        assert calls == []  # never got past the injection

    def test_real_errors_retain_their_type(self):
        """A genuine task bug surfaces as itself after the retry budget —
        existing pytest.raises(...) expectations keep working."""
        ex = make_executor("serial")
        attempts = []

        def bad():
            attempts.append(1)
            raise ValueError("columns must be aligned")

        with pytest.raises(ValueError, match="aligned"):
            run_with_recovery(
                ex, [bad], max_task_retries=2, backoff_seconds=0.0
            )
        assert len(attempts) == 3  # initial + 2 retries

    def test_zero_retries_fail_fast(self):
        ex = make_executor("serial")
        with pytest.raises(ZeroDivisionError):
            run_with_recovery(
                ex, [lambda: 1 / 0], max_task_retries=0,
                backoff_seconds=0.0,
            )

    def test_only_failed_partitions_recompute(self):
        """Lineage granularity: surviving tasks are not re-run."""
        plan = FaultPlan(seed=0, p_exception=1.0, max_failures_per_task=1)
        ex = make_executor("serial")
        calls = [0, 0]

        def make(i):
            def task():
                calls[i] += 1
                return i
            return task

        # Sabotage only index 1 by shifting its attempt stream: use a
        # custom wrapper-free check instead — index both through the plan
        # and count executions.  With p_exception=1, attempt 0 fails for
        # both, attempt 1 is past the horizon and succeeds; each task
        # body must run exactly once (the failed attempt never reaches
        # the body).
        out = run_with_recovery(
            ex, [make(0), make(1)], fault_plan=plan, backoff_seconds=0.0
        )
        assert out == [0, 1]
        assert calls == [1, 1]


# ----------------------------------------------------------------------
# Real worker death (processes backend)
# ----------------------------------------------------------------------
@pytest.mark.skipif(
    "fork" not in mp.get_all_start_methods(), reason="fork unavailable"
)
class TestWorkerDeath:
    def test_child_really_dies_and_is_observed(self):
        """The injected kill takes down the actual worker process; the
        driver reports WorkerDied with the kill exit code for that one
        task while its sibling completes."""
        plan = FaultPlan(seed=0, p_kill=1.0, max_failures_per_task=1)
        with ProcessExecutor(2) as ex:
            wrapped = plan.wrap(
                lambda: 1, batch=0, index=0, attempt=0,
                driver_pid=os.getpid(),
            )
            outcomes = ex.run_outcomes([wrapped, lambda: np.arange(3)])
        assert not outcomes[0].ok
        assert isinstance(outcomes[0].error, WorkerDied)
        assert str(KILL_EXIT_CODE) in str(outcomes[0].error)
        assert np.array_equal(outcomes[1].value, np.arange(3))

    def test_kill_recovered_end_to_end(self):
        plan = FaultPlan(seed=1, p_kill=1.0, max_failures_per_task=1)
        with ProcessExecutor(2) as ex:
            stats = RecoveryStats()
            out = run_with_recovery(
                ex,
                [lambda i=i: np.full(4, i) for i in range(3)],
                fault_plan=plan,
                backoff_seconds=0.0,
                stats=stats,
            )
        for i in range(3):
            assert np.array_equal(out[i], np.full(4, i))
        assert stats.tasks_failed == 3
        assert stats.tasks_retried == 3

    def test_unpicklable_child_error_degrades_to_text(self):
        class Weird(Exception):
            def __reduce__(self):
                raise TypeError("nope")

        def bad():
            raise Weird("worker-side detail")

        with ProcessExecutor(2) as ex:
            outcomes = ex.run_outcomes([bad, lambda: 1])
        assert not outcomes[0].ok
        assert "Weird" in str(outcomes[0].error)
        assert "worker-side detail" in str(outcomes[0].error)


# ----------------------------------------------------------------------
# Speculative execution
# ----------------------------------------------------------------------
class TestSpeculation:
    # seed=4 is verified below to straggle exactly one of four tasks in
    # batch 0 — the shape speculation exists for.
    LONE_STRAGGLER = FaultPlan(
        seed=4, p_straggler=0.3, straggler_seconds=0.4,
        max_failures_per_task=1,
    )
    POLICY = SpeculationPolicy(
        min_runtime_seconds=0.05, poll_interval_seconds=0.005
    )

    def test_plan_shape(self):
        acts = [self.LONE_STRAGGLER.action(0, i, 0) for i in range(4)]
        assert acts.count("straggler") == 1

    def test_threshold_needs_quorum(self):
        policy = SpeculationPolicy(quantile=0.5, min_runtime_seconds=0.1)
        assert policy.threshold([], 4) is None
        assert policy.threshold([0.01], 4) is None
        assert policy.threshold([0.01, 0.01], 4) == pytest.approx(0.1)
        assert policy.threshold([1.0, 1.0], 4) == pytest.approx(1.5)

    @pytest.mark.parametrize("backend", ["threads", "processes"])
    def test_first_result_wins(self, backend):
        if backend == "processes" and "fork" not in mp.get_all_start_methods():
            pytest.skip("fork unavailable")
        with make_executor(backend, 4) as ex:
            stats = RecoveryStats()
            t0 = time.monotonic()
            out = run_with_recovery(
                ex,
                [lambda i=i: np.full(10, i) for i in range(4)],
                fault_plan=self.LONE_STRAGGLER,
                speculation=self.POLICY,
                backoff_seconds=0.0,
                stats=stats,
            )
            wall = time.monotonic() - t0
        for i in range(4):
            assert np.array_equal(out[i], np.full(10, i))
        assert stats.tasks_speculated == 1
        assert stats.tasks_failed == 0  # stragglers are slow, not wrong
        # The backup (dispatched past the injection horizon, hence clean)
        # finished long before the 0.4s straggler would have.
        assert wall < self.LONE_STRAGGLER.straggler_seconds

    def test_serial_ignores_speculation(self):
        with make_executor("serial") as ex:
            stats = RecoveryStats()
            out = run_with_recovery(
                ex,
                [lambda i=i: i for i in range(3)],
                speculation=self.POLICY,
                backoff_seconds=0.0,
                stats=stats,
            )
        assert out == [0, 1, 2]
        assert stats.tasks_speculated == 0


# ----------------------------------------------------------------------
# Executor lifecycle (close idempotence, context manager, child reaping)
# ----------------------------------------------------------------------
class TestExecutorLifecycle:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_close_is_idempotent(self, backend):
        ex = make_executor(backend, 2)
        ex.run([lambda: 1, lambda: 2])
        ex.close()
        ex.close()

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_context_manager(self, backend):
        with make_executor(backend, 2) as ex:
            assert ex.run([lambda: 5])[0] == 5
        if backend == "threads":
            assert ex._pool is None

    @pytest.mark.skipif(
        "fork" not in mp.get_all_start_methods(), reason="fork unavailable"
    )
    def test_close_reaps_live_children(self):
        ex = ProcessExecutor(2)
        child = ex._spawn(
            mp.get_context("fork"), 0, lambda: time.sleep(60),
            speculative=False,
        )
        assert child.proc.is_alive()
        ex.close()
        assert not child.proc.is_alive()

    @pytest.mark.skipif(
        "fork" not in mp.get_all_start_methods(), reason="fork unavailable"
    )
    def test_atexit_reaper_kills_orphans(self):
        ex = ProcessExecutor(2)
        child = ex._spawn(
            mp.get_context("fork"), 0, lambda: time.sleep(60),
            speculative=False,
        )
        _reap_leaked_children()
        assert not child.proc.is_alive()

    def test_resolve_workers_reports_offender(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV_VAR, "lots")
        with pytest.raises(ValueError, match="'lots'"):
            _resolve_workers(None)
        monkeypatch.setenv(WORKERS_ENV_VAR, "0")
        with pytest.raises(ValueError, match="'0'"):
            _resolve_workers(None)
        monkeypatch.setenv(WORKERS_ENV_VAR, "   ")
        assert _resolve_workers(None) is None
        monkeypatch.delenv(WORKERS_ENV_VAR)
        assert _resolve_workers(4) == 4
        assert make_executor("serial").workers == default_workers()

    def test_subclass_overriding_run_gets_outcomes_for_free(self):
        class Doubling(Executor):
            name = "doubling"

            def run(self, tasks):
                return [task() for task in tasks]

        ex = Doubling(1)
        outcomes = ex.run_outcomes([lambda: 3, lambda: 1 / 0])
        assert outcomes[0].ok and outcomes[0].value == 3
        assert not outcomes[1].ok
        assert isinstance(outcomes[1].error, ZeroDivisionError)


# ----------------------------------------------------------------------
# End-to-end equivalence: faulted run == fault-free run, bit for bit
# ----------------------------------------------------------------------
def _pipeline_run(backend, plan, **ctx_kw):
    ctx = _ctx(backend, plan, n_nodes=3, **ctx_kw)
    rdd = ctx.parallelize(
        [np.arange(4000) % 701, np.arange(4000) % 499], n_partitions=6
    )
    out = (
        rdd.sample(0.5, seed=3)
        .map_partitions(lambda cols, p: (cols[0] * 2, cols[1] + p))
        .distinct(key_columns=(0, 1))
        .repartition(3)
        .collect()
    )
    ctx.close()
    return out, ctx


class TestChaosEquivalence:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_pipeline_bit_identical_under_faults(self, backend):
        ref, ref_ctx = _pipeline_run(backend, ZERO_PLAN)
        got, got_ctx = _pipeline_run(backend, CHAOS_PLAN)
        assert digest(got) == digest(ref)
        assert stage_structure(got_ctx) == stage_structure(ref_ctx)
        assert np.array_equal(
            got_ctx.metrics.node_peak_bytes, ref_ctx.metrics.node_peak_bytes
        )
        # The plan really fired, and the clean run really didn't.
        assert got_ctx.metrics.tasks_failed > 0
        assert got_ctx.metrics.tasks_retried > 0
        assert ref_ctx.metrics.tasks_failed == 0
        assert ref_ctx.metrics.tasks_retried == 0

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_pgpba_bit_identical_under_faults(
        self, backend, seed_graph, seed_analysis
    ):
        def run(plan):
            with _ctx(backend, plan) as ctx:
                res = PGPBA(fraction=0.5, seed=5).generate(
                    seed_graph, seed_analysis,
                    4 * seed_graph.n_edges, context=ctx,
                )
            return res, ctx

        ref, ref_ctx = run(ZERO_PLAN)
        got, got_ctx = run(CHAOS_PLAN)
        assert np.array_equal(got.graph.src, ref.graph.src)
        assert np.array_equal(got.graph.dst, ref.graph.dst)
        for name, col in ref.graph.edge_properties.items():
            assert np.array_equal(got.graph.edge_properties[name], col)
        assert stage_structure(got_ctx) == stage_structure(ref_ctx)
        assert got_ctx.metrics.tasks_failed > 0

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_pgsk_bit_identical_under_faults(
        self, backend, seed_graph, seed_analysis
    ):
        gen = PGSK(seed=5, kronfit_iterations=4, kronfit_swaps=10)
        initiator = gen.fit_initiator(seed_graph)

        def run(plan):
            with _ctx(backend, plan) as ctx:
                res = gen.generate(
                    seed_graph, seed_analysis, 2 * seed_graph.n_edges,
                    context=ctx, initiator=initiator,
                )
            return res, ctx

        ref, ref_ctx = run(ZERO_PLAN)
        got, got_ctx = run(CHAOS_PLAN)
        assert np.array_equal(got.graph.src, ref.graph.src)
        assert np.array_equal(got.graph.dst, ref.graph.dst)
        for name, col in ref.graph.edge_properties.items():
            assert np.array_equal(got.graph.edge_properties[name], col)
        assert stage_structure(got_ctx) == stage_structure(ref_ctx)
        assert got_ctx.metrics.tasks_failed > 0

    def test_speculation_keeps_results_identical(self):
        ref, _ = _pipeline_run("threads", ZERO_PLAN)
        plan = FaultPlan(
            seed=13, p_straggler=0.3, straggler_seconds=0.05,
            max_failures_per_task=2,
        )
        got, ctx = _pipeline_run(
            "threads", plan,
            speculation=SpeculationPolicy(
                min_runtime_seconds=0.01, poll_interval_seconds=0.002
            ),
        )
        assert digest(got) == digest(ref)


class TestZeroFaultByteIdentity:
    def test_zero_plan_equals_no_plan(self, monkeypatch):
        """A zero fault plan is observationally absent: same datasets,
        same simulated series, zero recovery counters — the guard that
        the injection layer costs nothing when disarmed."""
        monkeypatch.delenv(FAULTS_ENV_VAR, raising=False)
        explicit, ctx_explicit = _pipeline_run("serial", ZERO_PLAN)
        absent, ctx_absent = _pipeline_run("serial", None)
        assert ctx_absent.fault_plan is None
        assert digest(explicit) == digest(absent)
        assert stage_structure(ctx_explicit) == stage_structure(ctx_absent)
        for ctx in (ctx_explicit, ctx_absent):
            assert ctx.metrics.tasks_failed == 0
            assert ctx.metrics.tasks_retried == 0
            assert ctx.metrics.tasks_speculated == 0
            assert ctx.metrics.recovery_recompute_bytes == 0


class TestFaultMetricsThreeNodeCluster:
    """Satellite: the Fig. 8-12 inputs from a 3-node simulated cluster
    are identical with and without a seeded fault plan — recovery moves
    wall clock and recovery counters, never the simulated series."""

    def test_stage_records_identical(self, seed_graph, seed_analysis):
        def run(plan):
            with _ctx("serial", plan, n_nodes=3) as ctx:
                PGPBA(fraction=0.5, seed=5).generate(
                    seed_graph, seed_analysis,
                    3 * seed_graph.n_edges, context=ctx,
                )
            return ctx

        clean = run(ZERO_PLAN)
        faulted = run(CHAOS_PLAN)
        assert stage_structure(faulted) == stage_structure(clean)
        assert np.array_equal(
            faulted.metrics.node_peak_bytes, clean.metrics.node_peak_bytes
        )
        assert faulted.metrics.n_tasks == clean.metrics.n_tasks
        assert faulted.metrics.tasks_failed > 0
        assert faulted.metrics.recovery_recompute_bytes > 0
        assert clean.metrics.tasks_failed == 0
        assert clean.metrics.recovery_recompute_bytes == 0


# ----------------------------------------------------------------------
# CLI flags
# ----------------------------------------------------------------------
class TestCliFlags:
    def test_generate_accepts_fault_flags(self):
        args = build_parser().parse_args(
            [
                "generate", "seed.pcap", "--edges", "100",
                "--faults", '{"seed": 1, "p_exception": 0.1}',
                "--max-task-retries", "5",
                "--speculation",
            ]
        )
        assert FaultPlan.resolve(args.faults) == FaultPlan(
            seed=1, p_exception=0.1
        )
        assert args.max_task_retries == 5
        assert args.speculation is True

    def test_generate_fault_flags_default_to_env(self):
        args = build_parser().parse_args(
            ["generate", "seed.pcap", "--edges", "100"]
        )
        # None everywhere: ClusterContext falls through to the env vars.
        assert args.faults is None
        assert args.max_task_retries is None
        assert args.speculation is None


# ----------------------------------------------------------------------
# Hypothesis chaos property: random pipeline x random fault plan
# ----------------------------------------------------------------------
CHAOS_EXAMPLES = int(os.environ.get("REPRO_CHAOS_EXAMPLES", "25"))

fault_plans = st.builds(
    FaultPlan,
    seed=st.integers(0, 2**16),
    p_exception=st.floats(0.0, 0.35),
    p_kill=st.floats(0.0, 0.3),
    p_straggler=st.floats(0.0, 0.2),
    straggler_seconds=st.just(0.001),
    max_failures_per_task=st.integers(0, 3),
)

pipeline_ops = st.lists(
    st.one_of(
        st.tuples(
            st.just("sample"),
            st.floats(0.2, 0.9),
            st.integers(0, 100),
        ),
        st.tuples(st.just("map")),
        st.tuples(st.just("distinct")),
        st.tuples(st.just("repartition"), st.integers(1, 5)),
    ),
    min_size=1,
    max_size=4,
)


def _apply_pipeline(ctx, ops):
    rdd = ctx.parallelize(
        [np.arange(1500) % 311, np.arange(1500) % 97], n_partitions=5
    )
    for op in ops:
        if op[0] == "sample":
            rdd = rdd.sample(op[1], seed=op[2])
        elif op[0] == "map":
            rdd = rdd.map_partitions(
                lambda cols, p: (cols[0] * 2 + p, cols[1])
            )
        elif op[0] == "distinct":
            rdd = rdd.distinct(key_columns=(0,))
        elif op[0] == "repartition":
            rdd = rdd.repartition(op[1])
    return rdd.collect()


class TestHypothesisChaos:
    @settings(
        max_examples=CHAOS_EXAMPLES,
        deadline=None,
        suppress_health_check=[
            HealthCheck.too_slow,
            HealthCheck.function_scoped_fixture,
        ],
    )
    @given(
        plan=fault_plans,
        ops=pipeline_ops,
        backend=st.sampled_from(BACKENDS),
    )
    def test_random_pipeline_digest_equal_to_fault_free(
        self, request, plan, ops, backend
    ):
        if backend == "cluster":
            # The sampled backend isn't a pytest param, so the autouse
            # guard can't see it — request the daemons explicitly.
            request.getfixturevalue("cluster_daemons")
        with _ctx(backend, ZERO_PLAN) as ref_ctx:
            ref = _apply_pipeline(ref_ctx, ops)
        with _ctx(backend, plan) as got_ctx:
            got = _apply_pipeline(got_ctx, ops)
        assert digest(got) == digest(ref)
        assert stage_structure(got_ctx) == stage_structure(ref_ctx)
