"""Fig. 12 — strong-scaling speedup of PGPBA and PGSK.

Paper: fixed-size generation (the largest graphs 10 nodes can handle:
9.6 B edges for PGPBA with fraction=2, 6 B for PGSK) on 10..60 compute
nodes.  PGPBA's speedup is near-ideal; PGSK also scales linearly but sits
further from ideal because its distinct() shuffles parallelise less well.

Here: fixed 128x-seed targets on simulated clusters of 10..60 nodes.
Speedup is measured against the 10-node run, as in the paper.
"""

from __future__ import annotations

from conftest import save_series
from repro.core import PGPBA, PGSK
from repro.engine import ClusterContext

NODES = (10, 20, 30, 40, 50, 60)
FACTOR = 512
REPEATS = 2


def _ctx(nodes: int) -> ClusterContext:
    return ClusterContext(
        n_nodes=nodes, executor_cores=12, partition_multiplier=2
    )


def run_fig12(seed_graph, seed_analysis):
    pgsk = PGSK(seed=12, kronfit_iterations=8, kronfit_swaps=30)
    initiator = pgsk.fit_initiator(seed_graph)
    target = FACTOR * seed_graph.n_edges
    times = {"PGPBA": {}, "PGSK": {}}
    for nodes in NODES:
        # Best-of-REPEATS suppresses wall-clock measurement noise in the
        # per-task cost samples, as timing studies conventionally do.
        times["PGPBA"][nodes] = min(
            PGPBA(fraction=2.0, seed=12).generate(
                seed_graph, seed_analysis, target, context=_ctx(nodes)
            ).total_seconds
            for _ in range(REPEATS)
        )
        times["PGSK"][nodes] = min(
            pgsk.generate(
                seed_graph, seed_analysis, target,
                context=_ctx(nodes), initiator=initiator,
            ).total_seconds
            for _ in range(REPEATS)
        )
    rows = []
    for nodes in NODES:
        rows.append(
            [
                nodes,
                nodes / NODES[0],  # ideal
                times["PGPBA"][NODES[0]] / times["PGPBA"][nodes],
                times["PGSK"][NODES[0]] / times["PGSK"][nodes],
            ]
        )
    return rows


def test_fig12_strong_scaling_speedup(benchmark, seed_graph, seed_analysis):
    rows = run_fig12(seed_graph, seed_analysis)
    save_series(
        "fig12",
        "Fig. 12: strong-scaling speedup vs 10 nodes (fixed problem size)",
        ["nodes", "ideal", "PGPBA_speedup", "PGSK_speedup"],
        rows,
    )
    last = rows[-1]
    ideal, ba, sk = last[1], last[2], last[3]
    # PGPBA approaches ideal; PGSK scales but sits clearly below it.
    assert ba > 3.5
    assert sk > 1.5
    assert ba > sk
    # Broadly monotone speedups (10% slack for measurement noise).
    for col in (2, 3):
        series = [r[col] for r in rows]
        assert all(b >= a * 0.90 for a, b in zip(series, series[1:]))
    # Neither exceeds ideal (no superlinear artifacts).
    assert ba <= ideal * 1.10 and sk <= ideal * 1.10

    def op():
        return PGPBA(fraction=2.0, seed=13).generate(
            seed_graph, seed_analysis, 32 * seed_graph.n_edges,
            context=_ctx(30),
        )

    benchmark.pedantic(op, rounds=1, iterations=1)
