"""Unit tests for repro.graph.analytics and centrality."""

import networkx as nx
import numpy as np
import pytest

from repro.graph import (
    PropertyGraph,
    approximate_betweenness,
    degree_distribution,
    global_clustering_coefficient,
    in_degree_distribution,
    out_degree_distribution,
    weakly_connected_components,
)
from repro.graph.analytics import (
    degree_histogram,
    strongly_connected_components,
)


def chain(n=4):
    return PropertyGraph(
        n, np.arange(n - 1), np.arange(1, n)
    )


class TestDegreeDistributions:
    def test_chain_degrees(self):
        d = degree_distribution(chain(4))
        # endpoints have degree 1, middles degree 2
        assert np.allclose(d.pmf([1, 2]), [0.5, 0.5])

    def test_in_out_split(self):
        g = chain(3)
        din = in_degree_distribution(g)
        dout = out_degree_distribution(g)
        assert din.pmf([0])[0] == pytest.approx(1 / 3)
        assert dout.pmf([0])[0] == pytest.approx(1 / 3)

    def test_histogram_counts_vertices(self):
        values, counts = degree_histogram(chain(5))
        assert counts.sum() == 5


class TestComponents:
    def test_two_islands(self):
        g = PropertyGraph(4, np.array([0, 2]), np.array([1, 3]))
        labels = weakly_connected_components(g)
        assert labels[0] == labels[1]
        assert labels[2] == labels[3]
        assert labels[0] != labels[2]

    def test_direction_ignored_weak(self):
        g = PropertyGraph(3, np.array([1, 1]), np.array([0, 2]))
        labels = weakly_connected_components(g)
        assert len(set(labels.tolist())) == 1

    def test_strong_components_cycle(self):
        g = PropertyGraph(3, np.array([0, 1, 2]), np.array([1, 2, 0]))
        labels = strongly_connected_components(g)
        assert len(set(labels.tolist())) == 1

    def test_strong_components_chain_all_separate(self):
        labels = strongly_connected_components(chain(3))
        assert len(set(labels.tolist())) == 3

    def test_empty(self):
        assert weakly_connected_components(PropertyGraph.empty()).size == 0


class TestClustering:
    def test_triangle_is_one(self):
        g = PropertyGraph(3, np.array([0, 1, 2]), np.array([1, 2, 0]))
        assert global_clustering_coefficient(g) == pytest.approx(1.0)

    def test_star_is_zero(self):
        g = PropertyGraph(
            4, np.array([0, 0, 0]), np.array([1, 2, 3])
        )
        assert global_clustering_coefficient(g) == pytest.approx(0.0)

    def test_matches_networkx(self):
        rng = np.random.default_rng(0)
        src = rng.integers(0, 30, 150)
        dst = rng.integers(0, 30, 150)
        g = PropertyGraph.from_edge_list(src, dst, n_vertices=30)
        und = nx.Graph()
        und.add_nodes_from(range(30))
        und.add_edges_from(
            (int(a), int(b)) for a, b in zip(src, dst) if a != b
        )
        assert global_clustering_coefficient(g) == pytest.approx(
            nx.transitivity(und), abs=1e-9
        )

    def test_self_loops_ignored(self):
        g = PropertyGraph(2, np.array([0, 0]), np.array([0, 1]))
        assert global_clustering_coefficient(g) == 0.0

    def test_empty_zero(self):
        assert global_clustering_coefficient(PropertyGraph.empty()) == 0.0


class TestBetweenness:
    def test_chain_center_highest(self):
        # Undirectedness is not assumed: use a bidirected chain.
        src = np.array([0, 1, 1, 2, 2, 3])
        dst = np.array([1, 0, 2, 1, 3, 2])
        g = PropertyGraph(4, src, dst)
        bc = approximate_betweenness(g, n_sources=4, normalized=False)
        assert bc[1] > bc[0]
        assert bc[2] > bc[3]

    def test_exact_matches_networkx_on_small_graph(self):
        rng = np.random.default_rng(1)
        src = rng.integers(0, 12, 40)
        dst = rng.integers(0, 12, 40)
        keep = src != dst
        src, dst = src[keep], dst[keep]
        g = PropertyGraph.from_edge_list(src, dst, n_vertices=12)
        bc = approximate_betweenness(g, n_sources=12, normalized=True)
        nxg = nx.DiGraph()
        nxg.add_nodes_from(range(12))
        nxg.add_edges_from(zip(src.tolist(), dst.tolist()))
        expected = nx.betweenness_centrality(nxg, normalized=True)
        for v in range(12):
            assert bc[v] == pytest.approx(expected[v], abs=1e-9)

    def test_sampling_approximates(self):
        rng = np.random.default_rng(2)
        src = rng.integers(0, 60, 600)
        dst = rng.integers(0, 60, 600)
        g = PropertyGraph.from_edge_list(src, dst, n_vertices=60)
        exact = approximate_betweenness(g, n_sources=60)
        approx = approximate_betweenness(
            g, n_sources=30, rng=np.random.default_rng(3)
        )
        # Correlated rankings: top exact vertex is near the top of approx.
        top = int(np.argmax(exact))
        assert approx[top] >= np.quantile(approx, 0.8)

    def test_empty(self):
        assert approximate_betweenness(PropertyGraph.empty()).size == 0
