"""Immutable, index-accelerated snapshot of one property graph.

A :class:`GraphSnapshot` pre-computes, once, everything the four query
families repeatedly need:

* the **out-CSR** and **in-CSR** adjacency of the simple-graph
  projection (distinct ``(src, dst)`` pairs, lexicographically sorted),
  so BFS traversals and neighbourhood lookups never rebuild adjacency;
* the multigraph **degree arrays** (in / out / total);
* **sorted per-attribute indexes** for the edge columns the Netflow
  equality filters pin (``PROTOCOL``, ``DEST_PORT``, ``STATE``) and for
  the ``ID`` vertex column, turning equality predicates into
  ``searchsorted`` probes instead of full-column boolean scans.

Every array is marked read-only, so any number of server threads can
share one snapshot without locks.  Each snapshot carries a process-wide
monotone ``epoch``; the :class:`~repro.serve.server.QueryServer` keys
its result cache on it, so regenerating a graph (a new snapshot, a new
epoch) invalidates stale cached results without any coordination.

Snapshots are memoized on the graph via
:meth:`repro.graph.property_graph.PropertyGraph.snapshot`, which is also
what fixes the historical per-query CSR rebuild in the path queries: the
adjacency is now constructed exactly once per graph.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

import numpy as np

from repro.graph.property_graph import PropertyGraph

__all__ = ["GraphSnapshot", "SortedIndex", "INDEXED_EDGE_COLUMNS"]

#: Edge columns that get a sorted equality index at snapshot time —
#: the columns :class:`repro.queries.edge_queries.EdgeFilter` pins in
#: the Netflow workload.
INDEXED_EDGE_COLUMNS = ("PROTOCOL", "DEST_PORT", "STATE")

#: Vertex column indexed for host lookups.
HOST_ID_COLUMN = "ID"

_EPOCHS = itertools.count(1)


def _freeze(arr: np.ndarray) -> np.ndarray:
    arr.flags.writeable = False
    return arr


@dataclass(frozen=True)
class SortedIndex:
    """Sorted secondary index over one attribute column.

    ``values`` is the column sorted ascending; ``order`` is the stable
    argsort permutation mapping sorted positions back to original row
    ids.  Stability matters: rows with equal keys keep ascending row
    order, so an equality probe returns candidates already sorted by
    original position — selecting with them preserves edge order exactly
    like a boolean mask would.
    """

    values: np.ndarray
    order: np.ndarray

    @classmethod
    def build(cls, column: np.ndarray) -> "SortedIndex":
        column = np.asarray(column)
        order = np.argsort(column, kind="stable").astype(np.int64)
        return cls(
            values=_freeze(column[order]), order=_freeze(order)
        )

    def equal_range(self, value) -> tuple[int, int]:
        """``[lo, hi)`` span of ``value`` in the sorted order."""
        lo = int(np.searchsorted(self.values, value, side="left"))
        hi = int(np.searchsorted(self.values, value, side="right"))
        return lo, hi

    def candidates(self, value) -> np.ndarray:
        """Row ids with the column equal to ``value``, ascending."""
        lo, hi = self.equal_range(value)
        return self.order[lo:hi]

    def count(self, value) -> int:
        lo, hi = self.equal_range(value)
        return hi - lo


class GraphSnapshot:
    """Read-only indexed view of a :class:`PropertyGraph`.

    Build via :meth:`build` (or, memoized, via
    ``PropertyGraph.snapshot()``).  The underlying graph object is kept
    as :attr:`graph` — attribute columns are shared, not copied.
    """

    __slots__ = (
        "graph",
        "epoch",
        "out_indptr",
        "out_indices",
        "in_indptr",
        "in_indices",
        "out_degree",
        "in_degree",
        "total_degree",
        "edge_indexes",
        "host_index",
    )

    def __init__(
        self,
        *,
        graph: PropertyGraph,
        out_indptr: np.ndarray,
        out_indices: np.ndarray,
        in_indptr: np.ndarray,
        in_indices: np.ndarray,
        out_degree: np.ndarray,
        in_degree: np.ndarray,
        edge_indexes: dict[str, SortedIndex],
        host_index: SortedIndex | None,
    ) -> None:
        self.graph = graph
        self.epoch = next(_EPOCHS)
        self.out_indptr = _freeze(out_indptr)
        self.out_indices = _freeze(out_indices)
        self.in_indptr = _freeze(in_indptr)
        self.in_indices = _freeze(in_indices)
        self.out_degree = _freeze(out_degree)
        self.in_degree = _freeze(in_degree)
        self.total_degree = _freeze(out_degree + in_degree)
        self.edge_indexes = edge_indexes
        self.host_index = host_index

    # ------------------------------------------------------------------
    @classmethod
    def build(cls, graph: PropertyGraph) -> "GraphSnapshot":
        """Construct every index in one pass over the graph."""
        n = graph.n_vertices
        s, d = graph.distinct_edge_pairs()
        s = np.ascontiguousarray(s, dtype=np.int64)
        d = np.ascontiguousarray(d, dtype=np.int64)
        # distinct_edge_pairs returns pairs lexicographically sorted by
        # (src, dst): grouping by src yields the out-CSR directly, with
        # each row's neighbour list already sorted ascending — the same
        # canonical layout scipy's coo->csr conversion produces.
        out_indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(np.bincount(s, minlength=n), out=out_indptr[1:])
        # Reverse adjacency: re-sort the distinct pairs by (dst, src).
        rev = np.lexsort((s, d))
        in_indices = s[rev]
        in_indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(np.bincount(d, minlength=n), out=in_indptr[1:])

        edge_indexes = {
            name: SortedIndex.build(graph.edge_properties[name])
            for name in INDEXED_EDGE_COLUMNS
            if name in graph.edge_properties
        }
        host_ids = graph.vertex_properties.get(HOST_ID_COLUMN)
        host_index = (
            SortedIndex.build(host_ids) if host_ids is not None else None
        )
        return cls(
            graph=graph,
            out_indptr=out_indptr,
            out_indices=d,
            in_indptr=in_indptr,
            in_indices=in_indices,
            out_degree=graph.out_degrees().astype(np.int64, copy=False),
            in_degree=graph.in_degrees().astype(np.int64, copy=False),
            edge_indexes=edge_indexes,
            host_index=host_index,
        )

    # ------------------------------------------------------------------
    # PropertyGraph-compatible surface (what the query families read)
    # ------------------------------------------------------------------
    @property
    def n_vertices(self) -> int:
        return self.graph.n_vertices

    @property
    def n_edges(self) -> int:
        return self.graph.n_edges

    @property
    def vertex_properties(self) -> dict:
        return self.graph.vertex_properties

    @property
    def edge_properties(self) -> dict:
        return self.graph.edge_properties

    def snapshot(self) -> "GraphSnapshot":
        """A snapshot is its own snapshot (duck-typed with
        ``PropertyGraph.snapshot``), so every query family accepts
        either a bare graph or a prebuilt snapshot."""
        return self

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"GraphSnapshot(epoch={self.epoch}, |V|={self.n_vertices}, "
            f"|E|={self.n_edges}, indexes={sorted(self.edge_indexes)})"
        )

    # ------------------------------------------------------------------
    # adjacency probes
    # ------------------------------------------------------------------
    def out_neighbors(self, vertex: int) -> np.ndarray:
        """Distinct out-neighbours, ascending (read-only view)."""
        return self.out_indices[
            self.out_indptr[vertex]:self.out_indptr[vertex + 1]
        ]

    def in_neighbors(self, vertex: int) -> np.ndarray:
        """Distinct in-neighbours, ascending (read-only view)."""
        return self.in_indices[
            self.in_indptr[vertex]:self.in_indptr[vertex + 1]
        ]

    def distinct_out_degrees(self) -> np.ndarray:
        """Distinct-destination counts per source (fan-out widths)."""
        return np.diff(self.out_indptr)

    def distinct_in_degrees(self) -> np.ndarray:
        """Distinct-source counts per destination (fan-in widths)."""
        return np.diff(self.in_indptr)

    # ------------------------------------------------------------------
    # attribute probes
    # ------------------------------------------------------------------
    def has_edge_index(self, name: str) -> bool:
        return name in self.edge_indexes

    def equality_candidates(self, name: str, value) -> np.ndarray:
        """Edge ids where ``name == value`` (ascending), via the index."""
        return self.edge_indexes[name].candidates(value)

    def host_vertex(self, host_id: int) -> int | None:
        """First vertex whose ``ID`` equals ``host_id``; None if absent
        or if the graph has no ``ID`` column (callers fall back to the
        identity mapping generated graphs use)."""
        if self.host_index is None:
            return None
        lo, hi = self.host_index.equal_range(host_id)
        if lo == hi:
            return None
        return int(self.host_index.order[lo])

    def memory_bytes(self) -> int:
        """Resident bytes of the snapshot's own index arrays."""
        total = (
            self.out_indptr.nbytes + self.out_indices.nbytes
            + self.in_indptr.nbytes + self.in_indices.nbytes
            + self.out_degree.nbytes + self.in_degree.nbytes
            + self.total_degree.nbytes
        )
        for idx in self.edge_indexes.values():
            total += idx.values.nbytes + idx.order.nbytes
        if self.host_index is not None:
            total += (
                self.host_index.values.nbytes + self.host_index.order.nbytes
            )
        return total
