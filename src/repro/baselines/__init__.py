"""Baseline graph generators from the paper's related-work survey (§II).

The paper positions PGPBA and PGSK against the classic random-graph
models: Erdős–Rényi, Watts–Strogatz, the stochastic block model, Chung–Lu,
R-MAT and BTER.  Each baseline here generates a directed multigraph of a
requested size and can decorate it with the same Netflow property model
the core generators use — so veracity comparisons (see
``benchmarks/bench_baselines_veracity.py``) isolate the *structural* model
as the only difference.

None of these preserve a seed's degree distribution as well as the
scale-free generators do (ER and WS famously cannot produce hubs at all —
the motivation §II recounts); the comparison bench demonstrates exactly
that.
"""

from repro.baselines.base import BaselineGenerator, decorate_with_properties
from repro.baselines.erdos_renyi import ErdosRenyi
from repro.baselines.watts_strogatz import WattsStrogatz
from repro.baselines.chung_lu import ChungLu
from repro.baselines.rmat import RMat
from repro.baselines.sbm import StochasticBlockModel
from repro.baselines.bter import BTER

__all__ = [
    "BaselineGenerator",
    "decorate_with_properties",
    "ErdosRenyi",
    "WattsStrogatz",
    "ChungLu",
    "RMat",
    "StochasticBlockModel",
    "BTER",
]
