"""Unit tests for the trace substrate: hosts, workloads, synthesizer, attacks."""

import numpy as np
import pytest

from repro.core.pipeline import packets_from
from repro.netflow import Protocol, TcpState, assemble_flows
from repro.trace import (
    HostPopulation,
    STANDARD_WORKLOADS,
    TraceSynthesizer,
    attacks,
    synthesize_seed_packets,
)
from repro.trace.hosts import ipv4
from repro.trace.workloads import sample_workload


class TestHosts:
    def test_ipv4_packing(self):
        assert ipv4(10, 0, 0, 1) == (10 << 24) + 1
        with pytest.raises(ValueError):
            ipv4(256, 0, 0, 0)

    def test_pools_disjoint(self):
        pop = HostPopulation(n_clients=50, n_servers=10)
        assert not set(pop.clients.tolist()) & set(pop.servers.tolist())

    def test_zipf_server_popularity(self, rng):
        pop = HostPopulation(n_servers=20, server_zipf_exponent=1.5)
        s = pop.sample_servers(20_000, rng)
        counts = np.asarray(
            [(s == srv).sum() for srv in pop.servers]
        )
        # rank-1 server clearly dominates rank-10
        assert counts[0] > 3 * counts[9]

    def test_external_fraction(self, rng):
        pop = HostPopulation(external_fraction=0.5)
        d = pop.sample_destinations(10_000, rng)
        external = ~np.isin(d, pop.servers)
        assert np.mean(external) == pytest.approx(0.5, abs=0.05)

    def test_zero_external(self, rng):
        pop = HostPopulation(external_fraction=0.0)
        d = pop.sample_destinations(1000, rng)
        assert np.isin(d, pop.servers).all()

    def test_unused_address_outside_pools(self, rng):
        pop = HostPopulation()
        addr = pop.random_unused_address(rng)
        assert addr not in pop.clients and addr not in pop.servers

    def test_validation(self):
        with pytest.raises(ValueError):
            HostPopulation(n_clients=0)
        with pytest.raises(ValueError):
            HostPopulation(external_fraction=1.0)


class TestWorkloads:
    def test_weighted_sampling_hits_all(self, rng):
        names = {sample_workload(rng).name for _ in range(3000)}
        assert names == {w.name for w in STANDARD_WORKLOADS}

    def test_size_samplers_bounded(self, rng):
        for w in STANDARD_WORKLOADS:
            for _ in range(50):
                assert 1 <= w.sample_request_size(rng) <= 1400
                assert 1 <= w.sample_response_size(rng) <= 1400

    def test_exchange_bounds(self, rng):
        for w in STANDARD_WORKLOADS:
            lo, hi = w.exchanges
            for _ in range(50):
                assert lo <= w.sample_exchanges(rng) <= hi


class TestSynthesizer:
    def test_deterministic(self):
        a = synthesize_seed_packets(duration=3.0, session_rate=20, seed=5)
        b = synthesize_seed_packets(duration=3.0, session_rate=20, seed=5)
        assert len(a) == len(b)
        assert all(x[1] == y[1] for x, y in zip(a, b))

    def test_different_seeds_differ(self):
        a = synthesize_seed_packets(duration=3.0, session_rate=20, seed=5)
        b = synthesize_seed_packets(duration=3.0, session_rate=20, seed=6)
        assert any(x[1] != y[1] for x, y in zip(a, b)) or len(a) != len(b)

    def test_time_ordered(self):
        frames = synthesize_seed_packets(duration=3.0, session_rate=30)
        times = [t for t, _ in frames]
        assert times == sorted(times)

    def test_flows_parse_cleanly(self):
        frames = synthesize_seed_packets(duration=5.0, session_rate=30)
        flows = list(assemble_flows(packets_from(frames)))
        assert len(flows) > 20
        protos = {f.protocol for f in flows}
        assert Protocol.TCP in protos and Protocol.UDP in protos

    def test_tcp_sessions_complete(self):
        frames = synthesize_seed_packets(duration=5.0, session_rate=30)
        flows = list(assemble_flows(packets_from(frames)))
        tcp = [f for f in flows if f.protocol is Protocol.TCP]
        sf = sum(1 for f in tcp if f.state is TcpState.SF)
        # The vast majority of synthetic TCP sessions tear down cleanly
        # (sessions still open at capture end report S1).
        assert sf / len(tcp) > 0.8

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            TraceSynthesizer(session_rate=0).generate(1.0)
        with pytest.raises(ValueError):
            TraceSynthesizer().generate(0.0)


class TestAttacks:
    def test_syn_flood_frames_are_bare_syns(self):
        gt = attacks.syn_flood(
            attacker_ip=1, victim_ip=2, start_time=0.0, n_packets=50
        )
        assert len(gt.frames) == 50
        flows = list(assemble_flows(packets_from(gt.frames)))
        assert all(f.state is TcpState.S0 for f in flows)
        assert all(f.out_pkts == 1 for f in flows)

    def test_host_scan_port_coverage(self):
        gt = attacks.host_scan(
            attacker_ip=1, victim_ip=2, start_time=0.0, n_ports=100
        )
        flows = list(assemble_flows(packets_from(gt.frames)))
        ports = {f.dst_port for f in flows}
        assert len(ports) == 100

    def test_network_scan_host_coverage(self):
        gt = attacks.network_scan(
            attacker_ip=1, subnet_base=ipv4(10, 9, 0, 0),
            start_time=0.0, n_hosts=60,
        )
        assert len(set(gt.victim_ips)) == 60
        flows = list(assemble_flows(packets_from(gt.frames)))
        assert len({f.dst_ip for f in flows}) == 60

    def test_udp_flood_volume(self):
        gt = attacks.udp_flood(
            attacker_ip=1, victim_ip=2, start_time=0.0,
            n_packets=100, payload=1200,
        )
        flows = list(assemble_flows(packets_from(gt.frames)))
        assert sum(f.out_bytes for f in flows) == 100 * 1200

    def test_icmp_flood_protocol(self):
        gt = attacks.icmp_flood(
            attacker_ip=1, victim_ip=2, start_time=0.0, n_packets=30
        )
        flows = list(assemble_flows(packets_from(gt.frames)))
        assert all(f.protocol is Protocol.ICMP for f in flows)

    def test_ddos_multiple_sources(self):
        ips = tuple(range(100, 105))
        gt = attacks.ddos_syn_flood(
            attacker_ips=ips, victim_ip=2, start_time=0.0,
            packets_per_attacker=20,
        )
        assert gt.attacker_ips == ips
        flows = list(assemble_flows(packets_from(gt.frames)))
        assert {f.src_ip for f in flows} == set(ips)

    def test_ddos_requires_attackers(self):
        with pytest.raises(ValueError):
            attacks.ddos_syn_flood(
                attacker_ips=(), victim_ip=2, start_time=0.0
            )

    def test_frames_time_ordered(self):
        gt = attacks.ddos_syn_flood(
            attacker_ips=(1, 2, 3), victim_ip=9, start_time=0.0
        )
        times = [t for t, _ in gt.frames]
        assert times == sorted(times)

    def test_ground_truth_window(self):
        gt = attacks.syn_flood(
            attacker_ip=1, victim_ip=2, start_time=100.0, duration=5.0
        )
        assert gt.start_time == 100.0
        assert gt.end_time == 105.0
        assert all(100.0 <= t <= 105.0 for t, _ in gt.frames)

    @pytest.mark.parametrize(
        "build",
        [
            pytest.param(
                lambda t, d: attacks.syn_flood(
                    attacker_ip=1, victim_ip=2, start_time=t, duration=d
                ),
                id="syn_flood",
            ),
            pytest.param(
                lambda t, d: attacks.host_scan(
                    attacker_ip=1, victim_ip=2, start_time=t, duration=d
                ),
                id="host_scan",
            ),
            pytest.param(
                lambda t, d: attacks.network_scan(
                    attacker_ip=1, subnet_base=ipv4(10, 9, 0, 0),
                    start_time=t, duration=d,
                ),
                id="network_scan",
            ),
            pytest.param(
                lambda t, d: attacks.udp_flood(
                    attacker_ip=1, victim_ip=2, start_time=t, duration=d
                ),
                id="udp_flood",
            ),
            pytest.param(
                lambda t, d: attacks.icmp_flood(
                    attacker_ip=1, victim_ip=2, start_time=t, duration=d
                ),
                id="icmp_flood",
            ),
            pytest.param(
                lambda t, d: attacks.ddos_syn_flood(
                    attacker_ips=(1, 2, 3), victim_ip=9,
                    start_time=t, duration=d,
                ),
                id="ddos_syn_flood",
            ),
        ],
    )
    @pytest.mark.parametrize("start,duration", [(0.0, 5.0), (1_000_123.5, 7.25)])
    def test_every_injector_interval_bounds_frames(
        self, build, start, duration
    ):
        # The ground-truth interval is the time-to-detection reference:
        # every injector's frames must fall inside [start, end].
        gt = build(start, duration)
        assert gt.start_time == start
        assert gt.end_time == pytest.approx(start + duration)
        assert gt.frames, "injector produced no frames"
        for ts, _frame in gt.frames:
            assert gt.start_time <= ts <= gt.end_time
